//! HLTL-FO: hierarchical LTL with first-order (quantifier-free) propositions
//! (Section 3, Definition 12).
//!
//! An HLTL-FO formula over an artifact system is an expression `[φ]_{T1}`
//! where `φ` is an LTL formula whose propositions are interpreted as
//!
//! * quantifier-free conditions over the variables of the task the formula is
//!   attached to,
//! * occurrences of services observable by that task, or
//! * sub-formulas `[ψ]_{Tc}` evaluated on the local run of a child task `Tc`
//!   spawned at the current position.
//!
//! Following the simplifications of Appendix B.5 (Lemma 30) we work without
//! global variables and without set atoms: both can be compiled away at the
//! specification level.
//!
//! The verifier needs, for each task `T`, the set `Φ_T` of sub-formulas
//! attached to `T` and, for each truth assignment `β` over `Φ_T`, a single
//! LTL formula to turn into a Büchi automaton `B(T, β)`. [`HltlFormula::flatten`]
//! produces exactly that view.

use crate::ltl::Ltl;
use has_model::{ArtifactSystem, Condition, ServiceRef, TaskId};
use std::collections::BTreeMap;
use std::fmt;

/// Index of an interpreted proposition within an [`HltlFormula`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PropId(pub usize);

/// An interpreted proposition of an HLTL-FO formula.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HltlProp {
    /// A quantifier-free condition over the variables of the formula's task.
    Condition(Condition),
    /// "The current service is `σ`", for `σ ∈ Σ^obs_T`.
    Service(ServiceRef),
    /// `[ψ]_{Tc}`: the child task `Tc` is opened at this position and the
    /// resulting local run of `Tc` satisfies `ψ`.
    Child(TaskId, Box<HltlFormula>),
}

/// An HLTL-FO formula `[φ]_T`: an LTL skeleton over interpreted propositions,
/// attached to a task.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HltlFormula {
    /// The task the formula speaks about.
    pub task: TaskId,
    /// The LTL skeleton; propositions index into [`HltlFormula::props`].
    pub ltl: Ltl<PropId>,
    /// The interpreted propositions.
    pub props: Vec<HltlProp>,
}

/// A proposition of the per-task *flattened* view: the child sub-formula is
/// replaced by its index in `Φ_{Tc}`, giving a canonical, hashable
/// proposition space per task.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TaskProp {
    /// A condition over the task's variables.
    Condition(Condition),
    /// A service occurrence.
    Service(ServiceRef),
    /// The `phi_index`-th formula of `Φ_{child}` holds for the child run
    /// opened at this position.
    Child {
        /// The child task.
        child: TaskId,
        /// Index into the flattened `Φ_{child}` list.
        phi_index: usize,
    },
}

/// The flattened, per-task view of an HLTL-FO property: for every task `T`,
/// the list `Φ_T` of LTL formulas (over [`TaskProp`]) attached to `T`.
#[derive(Clone, Debug)]
pub struct FlattenedProperty {
    /// `Φ_T` for every task mentioned by the property.
    pub per_task: BTreeMap<TaskId, Vec<Ltl<TaskProp>>>,
    /// The task the root formula is attached to (always the system root for
    /// well-formed properties).
    pub root_task: TaskId,
    /// Index of the root formula within `per_task[root_task]`.
    pub root_index: usize,
}

impl FlattenedProperty {
    /// The formulas `Φ_T` attached to a task (empty slice if none).
    pub fn phi(&self, task: TaskId) -> &[Ltl<TaskProp>] {
        self.per_task.get(&task).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total number of flattened formulas (a size measure used in reports).
    pub fn total_formulas(&self) -> usize {
        self.per_task.values().map(Vec::len).sum()
    }
}

impl HltlFormula {
    /// Creates a formula, checking that every proposition index used by the
    /// LTL skeleton is in range.
    ///
    /// # Panics
    /// Panics if the skeleton references an out-of-range proposition.
    pub fn new(task: TaskId, ltl: Ltl<PropId>, props: Vec<HltlProp>) -> Self {
        for p in ltl.propositions() {
            assert!(
                p.0 < props.len(),
                "LTL skeleton references proposition {} but only {} are defined",
                p.0,
                props.len()
            );
        }
        HltlFormula { task, ltl, props }
    }

    /// The negated property `[¬φ]_T` (used by the verifier, which searches
    /// for a run satisfying the negation).
    pub fn negated(&self) -> Self {
        HltlFormula {
            task: self.task,
            ltl: self.ltl.clone().not(),
            props: self.props.clone(),
        }
    }

    /// Structural well-formedness with respect to an artifact system:
    ///
    /// * conditions only mention variables of the formula's task;
    /// * service propositions are observable by the formula's task;
    /// * child sub-formulas are attached to actual children of the task and
    ///   are themselves well-formed.
    pub fn validate(&self, system: &ArtifactSystem) -> Result<(), String> {
        let schema = &system.schema;
        let task = schema.task(self.task);
        for prop in &self.props {
            match prop {
                HltlProp::Condition(c) => {
                    for v in c.variables() {
                        if !task.variables.contains(&v) {
                            return Err(format!(
                                "condition proposition of `[..]_{}` mentions variable `{}` not owned by the task",
                                task.name,
                                schema.variable(v).name
                            ));
                        }
                    }
                }
                HltlProp::Service(s) => {
                    if !schema.observable_services(self.task).contains(s) {
                        return Err(format!(
                            "service proposition {:?} is not observable by task `{}`",
                            s, task.name
                        ));
                    }
                }
                HltlProp::Child(child, sub) => {
                    if !task.children.contains(child) {
                        return Err(format!(
                            "child sub-formula refers to `{}` which is not a child of `{}`",
                            schema.task(*child).name,
                            task.name
                        ));
                    }
                    if sub.task != *child {
                        return Err(format!(
                            "child sub-formula of `{}` is attached to the wrong task",
                            task.name
                        ));
                    }
                    sub.validate(system)?;
                }
            }
        }
        Ok(())
    }

    /// Flattens the formula into the per-task `Φ_T` lists used by the
    /// verifier. Identical sub-formulas of the same task are registered once.
    pub fn flatten(&self) -> FlattenedProperty {
        let mut out = FlattenedProperty {
            per_task: BTreeMap::new(),
            root_task: self.task,
            root_index: 0,
        };
        out.root_index = Self::register(self, &mut out);
        out
    }

    /// Registers `formula` in `out.per_task[formula.task]`, returning its
    /// index; children are registered recursively first.
    fn register(formula: &HltlFormula, out: &mut FlattenedProperty) -> usize {
        // Convert props, registering children first so their indices exist.
        let converted: Vec<TaskProp> = formula
            .props
            .iter()
            .map(|p| match p {
                HltlProp::Condition(c) => TaskProp::Condition(c.clone()),
                HltlProp::Service(s) => TaskProp::Service(*s),
                HltlProp::Child(child, sub) => {
                    let idx = Self::register(sub, out);
                    TaskProp::Child {
                        child: *child,
                        phi_index: idx,
                    }
                }
            })
            .collect();
        let ltl: Ltl<TaskProp> = formula.ltl.map_props(&|PropId(i)| converted[*i].clone());
        let list = out.per_task.entry(formula.task).or_default();
        if let Some(existing) = list.iter().position(|f| *f == ltl) {
            existing
        } else {
            list.push(ltl);
            list.len() - 1
        }
    }

    /// All tasks mentioned (transitively) by the formula.
    pub fn tasks(&self) -> Vec<TaskId> {
        let mut out = vec![self.task];
        for p in &self.props {
            if let HltlProp::Child(_, sub) = p {
                out.extend(sub.tasks());
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// Nesting depth of child sub-formulas (1 for a purely local formula).
    pub fn nesting_depth(&self) -> usize {
        1 + self
            .props
            .iter()
            .filter_map(|p| match p {
                HltlProp::Child(_, sub) => Some(sub.nesting_depth()),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }
}

impl fmt::Display for HltlFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}]_T{}", self.ltl, self.task.0)
    }
}

impl fmt::Display for PropId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Convenience builder for HLTL-FO formulas attached to a task.
///
/// ```
/// use has_ltl::hltl::HltlBuilder;
/// use has_model::{Condition, SystemBuilder};
///
/// let mut b = SystemBuilder::new("demo");
/// let root = b.root_task("Main");
/// let x = b.id_var(root, "x");
/// let system = b.build().unwrap();
///
/// let mut hb = HltlBuilder::new(root);
/// let p = hb.condition(Condition::not_null(x));
/// let formula = hb.finish(p.eventually());
/// assert!(formula.validate(&system).is_ok());
/// ```
#[derive(Debug)]
pub struct HltlBuilder {
    task: TaskId,
    props: Vec<HltlProp>,
}

impl HltlBuilder {
    /// Starts building a formula attached to `task`.
    pub fn new(task: TaskId) -> Self {
        HltlBuilder {
            task,
            props: Vec::new(),
        }
    }

    fn add(&mut self, prop: HltlProp) -> Ltl<PropId> {
        // Reuse an existing identical proposition if present.
        if let Some(i) = self.props.iter().position(|p| *p == prop) {
            return Ltl::prop(PropId(i));
        }
        self.props.push(prop);
        Ltl::prop(PropId(self.props.len() - 1))
    }

    /// A condition proposition.
    pub fn condition(&mut self, c: Condition) -> Ltl<PropId> {
        self.add(HltlProp::Condition(c))
    }

    /// A service-occurrence proposition.
    pub fn service(&mut self, s: ServiceRef) -> Ltl<PropId> {
        self.add(HltlProp::Service(s))
    }

    /// A child sub-formula proposition `[ψ]_{child}`.
    pub fn child(&mut self, child: TaskId, sub: HltlFormula) -> Ltl<PropId> {
        self.add(HltlProp::Child(child, Box::new(sub)))
    }

    /// Finishes the formula with the given LTL skeleton.
    pub fn finish(self, ltl: Ltl<PropId>) -> HltlFormula {
        HltlFormula::new(self.task, ltl, self.props)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use has_model::{SetUpdate, SystemBuilder};

    fn two_level_system() -> (ArtifactSystem, TaskId, TaskId) {
        let mut b = SystemBuilder::new("t");
        let root = b.root_task("Root");
        let x = b.id_var(root, "x");
        b.input_vars(root, &[x]);
        b.internal_service(root, "go", Condition::True, Condition::True, SetUpdate::None);
        let child = b.child_task(root, "Child");
        let cx = b.id_var(child, "cx");
        b.map_input(child, cx, x);
        let sys = b.build().unwrap();
        let root_id = sys.root();
        let child_id = sys.schema.task_by_name("Child").unwrap();
        (sys, root_id, child_id)
    }

    #[test]
    fn builder_constructs_valid_formula() {
        let (sys, root, child) = two_level_system();
        let x = sys.schema.var_by_name(root, "x").unwrap();
        let cx = sys.schema.var_by_name(child, "cx").unwrap();

        let mut cb = HltlBuilder::new(child);
        let c = cb.condition(Condition::not_null(cx));
        let child_formula = cb.finish(c.globally());

        let mut rb = HltlBuilder::new(root);
        let open = rb.service(ServiceRef::Opening(child));
        let sub = rb.child(child, child_formula);
        let cond = rb.condition(Condition::not_null(x));
        let formula = rb.finish(open.implies(sub).and(cond.eventually()).globally());

        assert!(formula.validate(&sys).is_ok());
        assert_eq!(formula.tasks(), vec![root, child]);
        assert_eq!(formula.nesting_depth(), 2);
    }

    #[test]
    fn validation_rejects_foreign_variables() {
        let (sys, root, child) = two_level_system();
        let cx = sys.schema.var_by_name(child, "cx").unwrap();
        let mut rb = HltlBuilder::new(root);
        let bad = rb.condition(Condition::not_null(cx));
        let formula = rb.finish(bad);
        assert!(formula.validate(&sys).is_err());
    }

    #[test]
    fn validation_rejects_non_child_subformula() {
        let (sys, root, child) = two_level_system();
        let mut cb = HltlBuilder::new(child);
        let t = cb.condition(Condition::True);
        let child_formula = cb.finish(t);
        // Attach the "child" formula to the root as if it were a child of the
        // child task (wrong direction).
        let mut cb2 = HltlBuilder::new(child);
        let sub = cb2.child(root, {
            let mut rb = HltlBuilder::new(root);
            let t = rb.condition(Condition::True);
            rb.finish(t)
        });
        let bad = cb2.finish(sub.and(Ltl::prop(PropId(0)).or(Ltl::True)));
        assert!(bad.validate(&sys).is_err());
        // The original child formula is fine when attached below the root.
        let mut rb = HltlBuilder::new(root);
        let ok = rb.child(child, child_formula);
        assert!(rb.finish(ok).validate(&sys).is_ok());
    }

    #[test]
    fn flatten_groups_formulas_per_task_and_dedups() {
        let (_sys, root, child) = two_level_system();
        let mk_child = || {
            let mut cb = HltlBuilder::new(child);
            let t = cb.condition(Condition::True);
            cb.finish(t.eventually())
        };
        let mut rb = HltlBuilder::new(root);
        // The same child formula referenced twice should be registered once.
        let a = rb.child(child, mk_child());
        let b = rb.child(child, mk_child());
        let formula = rb.finish(a.and(b.eventually()));
        let flat = formula.flatten();
        assert_eq!(flat.root_task, root);
        assert_eq!(flat.phi(child).len(), 1);
        assert_eq!(flat.phi(root).len(), 1);
        assert_eq!(flat.total_formulas(), 2);
    }

    #[test]
    fn negation_wraps_the_skeleton() {
        let (_sys, root, _child) = two_level_system();
        let mut rb = HltlBuilder::new(root);
        let c = rb.condition(Condition::True);
        let formula = rb.finish(c.clone().globally());
        let neg = formula.negated();
        assert_eq!(neg.ltl, c.globally().not());
        assert_eq!(neg.props, formula.props);
    }

    #[test]
    #[should_panic]
    fn out_of_range_proposition_panics() {
        let _ = HltlFormula::new(TaskId(0), Ltl::prop(PropId(3)), vec![]);
    }
}
