//! Büchi automaton construction for LTL (the `B_φ` of Section 3).
//!
//! The construction is the classical tableau ("GPVW") algorithm: states are
//! maximal consistent sets of subformulas, built on the fly from the formula
//! in negation normal form, yielding a generalized Büchi automaton with one
//! acceptance set per *until* subformula; the result is then degeneralized
//! into an ordinary Büchi automaton.
//!
//! Two acceptance notions are exposed, because HLTL-FO formulas are evaluated
//! both on infinite local runs and on finite (returning) local runs
//! (Appendix B.2):
//!
//! * [`Buchi::accepting`] — the Büchi acceptance set for infinite words;
//! * [`Buchi::finite_accepting`] — the set `Q_fin`: a run over a finite word
//!   is accepting iff it ends in a state with no leftover next-step
//!   obligations.

use crate::ltl::Ltl;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::hash::Hash;

/// Index of a state of a [`Buchi`] automaton.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BuchiState(pub usize);

/// A transition label: the conjunction of propositional literals required to
/// take the transition. An input letter (a truth assignment to propositions)
/// matches if it makes every positive literal true and every negative literal
/// false.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Label<P: Ord> {
    /// Propositions required to be true.
    pub pos: BTreeSet<P>,
    /// Propositions required to be false.
    pub neg: BTreeSet<P>,
}

impl<P: Ord> Default for Label<P> {
    fn default() -> Self {
        Label {
            pos: BTreeSet::new(),
            neg: BTreeSet::new(),
        }
    }
}

impl<P: Ord> Label<P> {
    /// Does a truth assignment satisfy this label?
    pub fn matches<F>(&self, mut assignment: F) -> bool
    where
        F: FnMut(&P) -> bool,
    {
        self.pos.iter().all(&mut assignment) && self.neg.iter().all(|p| !assignment(p))
    }

    /// Returns `true` if the label is internally contradictory (requires some
    /// proposition to be both true and false). Such transitions can never be
    /// taken and are dropped during construction.
    fn contradictory(&self) -> bool {
        self.pos.intersection(&self.neg).next().is_some()
    }
}

/// A (nondeterministic) Büchi automaton over truth assignments to
/// propositions of type `P`.
#[derive(Clone, Debug)]
pub struct Buchi<P: Ord> {
    /// Number of states.
    state_count: usize,
    /// Initial states.
    initial: BTreeSet<BuchiState>,
    /// Transitions `(from, label, to)`, grouped by source state.
    transitions: BTreeMap<BuchiState, Vec<(Label<P>, BuchiState)>>,
    /// Büchi (infinite-word) accepting states.
    accepting: BTreeSet<BuchiState>,
    /// Finite-word accepting states (`Q_fin`).
    finite_accepting: BTreeSet<BuchiState>,
    /// Per-node entry labels plus the degeneralization factor `k`; the label
    /// of state `s` is `entry_labels.0[s.0 / k]`. Used to match the first
    /// letter of a word against initial states.
    entry_labels: Option<(Vec<Label<P>>, usize)>,
}

/// A tableau node of the GPVW construction.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Node<P: Ord> {
    incoming: BTreeSet<usize>, // node ids; usize::MAX denotes the virtual init node
    new: BTreeSet<Ltl<P>>,
    old: BTreeSet<Ltl<P>>,
    next: BTreeSet<Ltl<P>>,
    /// The subset of `next` whose obligations are *strong*: they stem from a
    /// strong `X` or from the unfolding of an `U`, and therefore forbid the
    /// word from ending at this node. Nodes with an empty strong set form the
    /// finite-word accepting set `Q_fin`.
    next_strong: BTreeSet<Ltl<P>>,
}

const INIT: usize = usize::MAX;

impl<P: Clone + Eq + Hash + Ord> Buchi<P> {
    /// Builds the Büchi automaton of an LTL formula.
    // The degeneralization loop reads `fair_sets[counter]` while computing
    // the successor counter; indexing is the clearer form.
    #[allow(clippy::needless_range_loop)]
    pub fn from_ltl(formula: &Ltl<P>) -> Self {
        let nnf = formula.nnf();
        let mut nodes: Vec<Node<P>> = Vec::new();

        let start = Node {
            incoming: BTreeSet::from([INIT]),
            new: BTreeSet::from([nnf.clone()]),
            old: BTreeSet::new(),
            next: BTreeSet::new(),
            next_strong: BTreeSet::new(),
        };
        Self::expand(start, &mut nodes);

        // Until subformulas of the NNF determine the generalized acceptance
        // sets: for (a U b), a node is fair if it does not contain (a U b) in
        // `old`, or contains b in `old`.
        let untils: Vec<Ltl<P>> = Self::subformulas(&nnf)
            .into_iter()
            .filter(|f| matches!(f, Ltl::Until(_, _)))
            .collect();

        // Build the generalized automaton's transition structure: a
        // transition q -> n exists for q in n.incoming, labeled by the
        // literals of n.old.
        let labels: Vec<Label<P>> = nodes
            .iter()
            .map(|n| {
                let mut label = Label::default();
                for f in &n.old {
                    match f {
                        Ltl::Prop(p) => {
                            label.pos.insert(p.clone());
                        }
                        Ltl::Not(inner) => {
                            if let Ltl::Prop(p) = &**inner {
                                label.neg.insert(p.clone());
                            }
                        }
                        _ => {}
                    }
                }
                label
            })
            .collect();

        let fair_sets: Vec<BTreeSet<usize>> = untils
            .iter()
            .map(|u| {
                let Ltl::Until(_, b) = u else { unreachable!() };
                nodes
                    .iter()
                    .enumerate()
                    .filter(|(_, n)| !n.old.contains(u) || n.old.contains(b))
                    .map(|(i, _)| i)
                    .collect()
            })
            .collect();

        // Degeneralize: states are (node, counter). With k = 0 acceptance
        // sets every state is accepting and the counter collapses to 0.
        let k = fair_sets.len().max(1);
        let trivially_fair = fair_sets.is_empty();
        let state_index = |node: usize, counter: usize| node * k + counter;
        let state_count = nodes.len() * k;

        let mut transitions: BTreeMap<BuchiState, Vec<(Label<P>, BuchiState)>> = BTreeMap::new();
        let mut initial = BTreeSet::new();
        let mut accepting = BTreeSet::new();
        let mut finite_accepting = BTreeSet::new();

        for (target_idx, node) in nodes.iter().enumerate() {
            let label = &labels[target_idx];
            if label.contradictory() {
                continue;
            }
            for &source in &node.incoming {
                for counter in 0..k {
                    // Counter update: from counter i, if the *source* node is
                    // in fair set i, advance to i+1 (mod k); the accepting
                    // states are those with counter 0 that belong to fair set
                    // 0 — the standard degeneralization.
                    let next_counter = if trivially_fair {
                        0
                    } else if source != INIT && fair_sets[counter].contains(&source) {
                        (counter + 1) % k
                    } else {
                        counter
                    };
                    if source == INIT {
                        // Transitions out of the virtual initial node become
                        // initial states entered by reading the first letter;
                        // we model this by making (target, counter=0) initial
                        // and *also* recording the entry label so that
                        // `initial_successors` can check it.
                        if counter == 0 {
                            initial.insert(BuchiState(state_index(target_idx, 0)));
                        }
                    } else {
                        transitions
                            .entry(BuchiState(state_index(source, counter)))
                            .or_default()
                            .push((label.clone(), BuchiState(state_index(target_idx, next_counter))));
                    }
                }
            }
        }

        for (node_idx, node) in nodes.iter().enumerate() {
            for counter in 0..k {
                let s = BuchiState(state_index(node_idx, counter));
                if node.next_strong.is_empty() {
                    finite_accepting.insert(s);
                }
                let fair = if trivially_fair {
                    true
                } else {
                    counter == 0 && fair_sets[0].contains(&node_idx)
                };
                if fair {
                    accepting.insert(s);
                }
            }
        }

        Buchi {
            state_count,
            initial,
            transitions,
            accepting,
            finite_accepting,
            entry_labels: Some((labels, k)),
        }
    }

    /// All subformulas of a formula (including itself).
    fn subformulas(f: &Ltl<P>) -> BTreeSet<Ltl<P>> {
        let mut out = BTreeSet::new();
        fn rec<P: Clone + Eq + Hash + Ord>(f: &Ltl<P>, out: &mut BTreeSet<Ltl<P>>) {
            out.insert(f.clone());
            match f {
                Ltl::True | Ltl::False | Ltl::Prop(_) => {}
                Ltl::Not(a) | Ltl::Next(a) | Ltl::WeakNext(a) => rec(a, out),
                Ltl::And(a, b) | Ltl::Or(a, b) | Ltl::Until(a, b) | Ltl::Release(a, b) => {
                    rec(a, out);
                    rec(b, out);
                }
            }
        }
        rec(f, &mut out);
        out
    }

    /// GPVW node expansion.
    fn expand(node: Node<P>, nodes: &mut Vec<Node<P>>) {
        let mut node = node;
        let Some(f) = node.new.iter().next().cloned() else {
            // New set empty: merge with an existing node or add.
            if let Some(existing) = nodes.iter_mut().find(|n| {
                n.old == node.old && n.next == node.next && n.next_strong == node.next_strong
            }) {
                existing.incoming.extend(node.incoming);
                return;
            }
            let id = nodes.len();
            nodes.push(node.clone());
            let succ = Node {
                incoming: BTreeSet::from([id]),
                new: node.next.clone(),
                old: BTreeSet::new(),
                next: BTreeSet::new(),
                next_strong: BTreeSet::new(),
            };
            Self::expand(succ, nodes);
            return;
        };
        node.new.remove(&f);
        match &f {
            Ltl::False => { /* inconsistent: drop this node */ }
            Ltl::True => {
                // Record `true` in `old` so that the fairness check
                // "goal of the until is in old" also works for untils whose
                // goal is the constant true (e.g. F true inside G F true).
                node.old.insert(Ltl::True);
                Self::expand(node, nodes);
            }
            Ltl::Prop(_) | Ltl::Not(_) => {
                // (Negations are only over propositions after NNF.)
                let negated = match &f {
                    Ltl::Prop(p) => Ltl::Not(Box::new(Ltl::Prop(p.clone()))),
                    Ltl::Not(inner) => (**inner).clone(),
                    _ => unreachable!(),
                };
                if node.old.contains(&negated) {
                    // Contradiction: drop.
                    return;
                }
                node.old.insert(f);
                Self::expand(node, nodes);
            }
            Ltl::And(a, b) => {
                for g in [&**a, &**b] {
                    if !node.old.contains(g) {
                        node.new.insert(g.clone());
                    }
                }
                node.old.insert(f.clone());
                Self::expand(node, nodes);
            }
            Ltl::Or(a, b) => {
                let mut n1 = node.clone();
                if !n1.old.contains(&**a) {
                    n1.new.insert((**a).clone());
                }
                n1.old.insert(f.clone());
                let mut n2 = node;
                if !n2.old.contains(&**b) {
                    n2.new.insert((**b).clone());
                }
                n2.old.insert(f.clone());
                Self::expand(n1, nodes);
                Self::expand(n2, nodes);
            }
            Ltl::Next(a) => {
                node.old.insert(f.clone());
                node.next.insert((**a).clone());
                node.next_strong.insert((**a).clone());
                Self::expand(node, nodes);
            }
            Ltl::WeakNext(a) => {
                node.old.insert(f.clone());
                node.next.insert((**a).clone());
                Self::expand(node, nodes);
            }
            Ltl::Until(a, b) => {
                // f = a U b : (b) ∨ (a ∧ X f)  — the unfolding obligation is
                // strong: an until that has not yet reached its goal cannot
                // end the word here.
                let mut n1 = node.clone();
                if !n1.old.contains(&**a) {
                    n1.new.insert((**a).clone());
                }
                n1.next.insert(f.clone());
                n1.next_strong.insert(f.clone());
                n1.old.insert(f.clone());
                let mut n2 = node;
                if !n2.old.contains(&**b) {
                    n2.new.insert((**b).clone());
                }
                n2.old.insert(f.clone());
                Self::expand(n1, nodes);
                Self::expand(n2, nodes);
            }
            Ltl::Release(a, b) => {
                // f = a R b : (a ∧ b) ∨ (b ∧ X f)
                let mut n1 = node.clone();
                if !n1.old.contains(&**b) {
                    n1.new.insert((**b).clone());
                }
                n1.next.insert(f.clone());
                n1.old.insert(f.clone());
                let mut n2 = node;
                for g in [&**a, &**b] {
                    if !n2.old.contains(g) {
                        n2.new.insert(g.clone());
                    }
                }
                n2.old.insert(f.clone());
                Self::expand(n1, nodes);
                Self::expand(n2, nodes);
            }
        }
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.state_count
    }

    /// The Büchi (infinite-word) accepting states.
    pub fn accepting(&self) -> &BTreeSet<BuchiState> {
        &self.accepting
    }

    /// The finite-word accepting states `Q_fin`.
    pub fn finite_accepting(&self) -> &BTreeSet<BuchiState> {
        &self.finite_accepting
    }

    /// The initial states, in ascending state order. This is the order
    /// [`Buchi::initial_successors`] filters, which makes it the canonical
    /// order for compiled representations that must reproduce it.
    pub fn initial(&self) -> impl Iterator<Item = BuchiState> + '_ {
        self.initial.iter().copied()
    }

    /// The outgoing transitions of a state, in construction order — the
    /// order [`Buchi::step`] filters. Compiled representations must preserve
    /// this order to keep downstream explorations deterministic.
    pub fn transitions_from(&self, state: BuchiState) -> &[(Label<P>, BuchiState)] {
        self.transitions
            .get(&state)
            .map(Vec::as_slice)
            .unwrap_or_default()
    }

    /// The literal label that must hold when a run *enters* `state` — the
    /// label [`Buchi::initial_successors`] checks against the first letter.
    pub fn entry_label(&self, state: BuchiState) -> &Label<P> {
        self.state_label(state)
    }

    /// States reachable by reading the *first* letter of a word.
    pub fn initial_successors<F>(&self, mut assignment: F) -> Vec<BuchiState>
    where
        F: FnMut(&P) -> bool,
    {
        self.initial
            .iter()
            .copied()
            .filter(|s| self.state_label(*s).matches(&mut assignment))
            .collect()
    }

    /// Successor states of `state` when reading a letter.
    pub fn step<F>(&self, state: BuchiState, mut assignment: F) -> Vec<BuchiState>
    where
        F: FnMut(&P) -> bool,
    {
        self.transitions
            .get(&state)
            .map(|outs| {
                outs.iter()
                    .filter(|(label, _)| label.matches(&mut assignment))
                    .map(|(_, to)| *to)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The literal label that must hold when a run *enters* this state.
    fn state_label(&self, state: BuchiState) -> &Label<P> {
        let (labels, k) = self
            .entry_labels
            .as_ref()
            .expect("entry labels recorded at construction");
        &labels[state.0 / k]
    }

    /// Checks whether the automaton accepts the finite word given as a
    /// sequence of truth assignments (`word[i]` decides proposition truth at
    /// position `i`).
    pub fn accepts_finite<F>(&self, len: usize, holds: &F) -> bool
    where
        F: Fn(usize, &P) -> bool,
    {
        if len == 0 {
            return false;
        }
        let mut frontier: BTreeSet<BuchiState> = self
            .initial_successors(|p| holds(0, p))
            .into_iter()
            .collect();
        for i in 1..len {
            let mut next = BTreeSet::new();
            for s in &frontier {
                next.extend(self.step(*s, |p| holds(i, p)));
            }
            frontier = next;
            if frontier.is_empty() {
                return false;
            }
        }
        frontier.iter().any(|s| self.finite_accepting.contains(s))
    }

    /// Checks whether the automaton accepts the ultimately-periodic word
    /// `w[0..loop_start] (w[loop_start..len])^ω`.
    ///
    /// Implemented by building the product of the automaton with the lasso
    /// positions and looking for a reachable cycle through an accepting
    /// state.
    pub fn accepts_lasso<F>(&self, len: usize, loop_start: usize, holds: &F) -> bool
    where
        F: Fn(usize, &P) -> bool,
    {
        assert!(len > 0 && loop_start < len);
        let succ_pos = |i: usize| if i + 1 < len { i + 1 } else { loop_start };
        // Product nodes: (state, position-just-read).
        let mut reachable: BTreeSet<(BuchiState, usize)> = BTreeSet::new();
        let mut stack: Vec<(BuchiState, usize)> = self
            .initial_successors(|p| holds(0, p))
            .into_iter()
            .map(|s| (s, 0))
            .collect();
        while let Some(node) = stack.pop() {
            if !reachable.insert(node) {
                continue;
            }
            let (s, i) = node;
            let j = succ_pos(i);
            for t in self.step(s, |p| holds(j, p)) {
                stack.push((t, j));
            }
        }
        // For each reachable accepting product node inside the loop part,
        // check whether it can reach itself.
        for &(s, i) in reachable.iter() {
            if i < loop_start || !self.accepting.contains(&s) {
                continue;
            }
            // DFS from (s, i) looking for a cycle back to (s, i).
            let mut seen: BTreeSet<(BuchiState, usize)> = BTreeSet::new();
            let j0 = succ_pos(i);
            let mut stack: Vec<(BuchiState, usize)> = self
                .step(s, |p| holds(j0, p))
                .into_iter()
                .map(|t| (t, j0))
                .collect();
            while let Some(node) = stack.pop() {
                if node == (s, i) {
                    return true;
                }
                if !seen.insert(node) {
                    continue;
                }
                let (t, k) = node;
                let j = succ_pos(k);
                for u in self.step(t, |p| holds(j, p)) {
                    stack.push((u, j));
                }
            }
        }
        false
    }
}

impl<P: Ord> Buchi<P> {
    /// Total number of transitions (for statistics).
    pub fn transition_count(&self) -> usize {
        self.transitions.values().map(Vec::len).sum()
    }
}

impl<P: Ord + fmt::Debug> fmt::Display for Buchi<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Buchi({} states, {} transitions, {} accepting, {} finite-accepting)",
            self.state_count,
            self.transition_count(),
            self.accepting.len(),
            self.finite_accepting.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type L = Ltl<char>;

    fn p(c: char) -> L {
        Ltl::prop(c)
    }

    fn holds<'a>(trace: &'a [&'a str]) -> impl Fn(usize, &char) -> bool + 'a {
        move |j, c| trace[j].contains(*c)
    }

    #[test]
    fn automaton_agrees_with_finite_semantics_on_examples() {
        let formulas = vec![
            p('a'),
            p('a').not(),
            p('a').next(),
            p('a').until(p('b')),
            p('a').globally(),
            p('b').eventually(),
            p('a').implies(p('b').next()).globally(),
            p('a').until(p('b')).not(),
        ];
        let traces: Vec<Vec<&str>> = vec![
            vec!["a"],
            vec!["a", "b"],
            vec!["", "ab", "b"],
            vec!["a", "a", "b"],
            vec!["b", "a"],
            vec!["a", "a", "a"],
        ];
        for f in &formulas {
            let b = Buchi::from_ltl(f);
            for t in &traces {
                let h = holds(t);
                assert_eq!(
                    b.accepts_finite(t.len(), &h),
                    f.eval_finite(t.len(), &h),
                    "formula {f} on trace {t:?}"
                );
            }
        }
    }

    #[test]
    fn automaton_agrees_with_lasso_semantics_on_examples() {
        let formulas = vec![
            p('a').globally(),
            p('a').eventually().globally(),  // G F a
            p('a').globally().eventually(),  // F G a
            p('a').until(p('b')),
            p('a').implies(p('b').eventually()).globally(),
            p('a').globally().not(),
        ];
        // (prefix, full trace, loop_start)
        let lassos: Vec<(Vec<&str>, usize)> = vec![
            (vec!["a"], 0),
            (vec!["a", "b"], 1),
            (vec!["a", ""], 1),
            (vec!["b", "a"], 0),
            (vec!["", "a", "ab"], 1),
        ];
        for f in &formulas {
            let b = Buchi::from_ltl(f);
            for (t, ls) in &lassos {
                let h = holds(t);
                assert_eq!(
                    b.accepts_lasso(t.len(), *ls, &h),
                    f.eval_lasso(t.len(), *ls, &h),
                    "formula {f} on lasso {t:?} loop {ls}"
                );
            }
        }
    }

    #[test]
    fn globally_a_rejects_finite_trace_with_violation() {
        let b = Buchi::from_ltl(&p('a').globally());
        assert!(b.accepts_finite(2, &holds(&["a", "a"])));
        assert!(!b.accepts_finite(2, &holds(&["a", "b"])));
    }

    #[test]
    fn eventually_rejects_lasso_that_never_reaches_goal() {
        let b = Buchi::from_ltl(&p('b').eventually());
        assert!(!b.accepts_lasso(1, 0, &holds(&["a"])));
        assert!(b.accepts_lasso(2, 1, &holds(&["a", "b"])));
    }

    #[test]
    fn next_at_end_of_finite_word_fails() {
        let b = Buchi::from_ltl(&p('a').next());
        assert!(!b.accepts_finite(1, &holds(&["a"])));
        assert!(b.accepts_finite(2, &holds(&["", "a"])));
    }

    #[test]
    fn statistics_are_positive() {
        let b = Buchi::from_ltl(&p('a').until(p('b')));
        assert!(b.state_count() > 0);
        assert!(b.transition_count() > 0);
        assert!(!b.accepting().is_empty());
        assert!(!b.finite_accepting().is_empty());
        let display = format!("{b}");
        assert!(display.contains("states"));
    }
}
