//! Property-based tests for the model layer: random schemas and conditions.

use has_model::{
    AttrKind, Attribute, Condition, DatabaseSchema, Relation, RelationId, SchemaClass,
};
use proptest::prelude::*;

/// Strategy: a random database schema with `n` relations and random foreign
/// keys among them (possibly cyclic).
fn arb_schema(max_relations: usize) -> impl Strategy<Value = DatabaseSchema> {
    (1..=max_relations).prop_flat_map(|n| {
        // For each relation, a set of foreign-key targets.
        proptest::collection::vec(proptest::collection::vec(0..n, 0..3), n).prop_map(
            move |fk_targets| {
                let relations = fk_targets
                    .into_iter()
                    .enumerate()
                    .map(|(i, targets)| {
                        let mut attributes = vec![
                            Attribute {
                                name: "id".into(),
                                kind: AttrKind::Key,
                            },
                            Attribute {
                                name: "v".into(),
                                kind: AttrKind::Numeric,
                            },
                        ];
                        for (k, t) in targets.into_iter().enumerate() {
                            attributes.push(Attribute {
                                name: format!("fk{k}"),
                                kind: AttrKind::ForeignKey(RelationId(t)),
                            });
                        }
                        Relation {
                            name: format!("R{i}"),
                            attributes,
                        }
                    })
                    .collect();
                DatabaseSchema { relations }
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The three schema classes are mutually consistent: acyclic implies
    /// linearly-cyclic behaviour of the classifier, and the classifier never
    /// disagrees with the direct acyclicity test.
    #[test]
    fn schema_classification_is_consistent(schema in arb_schema(4)) {
        let class = schema.classify();
        match class {
            SchemaClass::Acyclic => prop_assert!(schema.is_acyclic()),
            SchemaClass::LinearlyCyclic => {
                prop_assert!(!schema.is_acyclic());
                prop_assert!(schema.is_linearly_cyclic());
            }
            SchemaClass::Cyclic => {
                prop_assert!(!schema.is_acyclic());
                prop_assert!(!schema.is_linearly_cyclic());
            }
        }
    }

    /// Path counting is monotone in the depth bound and respects its cap.
    #[test]
    fn path_counting_is_monotone(schema in arb_schema(4), n in 1usize..6) {
        let small = schema.max_paths_up_to(n, 1_000);
        let large = schema.max_paths_up_to(n + 1, 1_000);
        prop_assert!(small <= large);
        prop_assert!(schema.max_paths_up_to(n, 5) <= 5);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Condition combinators preserve the de Morgan dualities under the
    /// three-valued-free boolean evaluation.
    #[test]
    fn condition_negation_is_involutive(flags in proptest::collection::vec(any::<bool>(), 1..6)) {
        // Build a condition tree over dummy atoms indexed by position.
        use has_model::{Atom, Term, VarId};
        let atoms: Vec<Condition> = (0..flags.len())
            .map(|i| Condition::Atom(Atom::Eq(Term::Var(VarId(i)), Term::Null)))
            .collect();
        let cond = Condition::any(atoms.clone()).and(Condition::all(atoms));
        let truth = |c: &Condition| {
            c.eval_with(&mut |a: &Atom| match a {
                Atom::Eq(Term::Var(VarId(i)), Term::Null) => flags[*i],
                _ => false,
            })
        };
        prop_assert_eq!(truth(&cond), !truth(&cond.clone().negate()));
        prop_assert_eq!(truth(&cond.clone().negate().negate()), truth(&cond));
    }
}
