//! Structural validation of artifact systems.
//!
//! [`validate()`] checks the well-formedness requirements of Definitions 1–7
//! plus the *syntactic* decidability restrictions of Section 6 (the
//! remaining restrictions are enforced by the operational and symbolic
//! semantics rather than by the syntax):
//!
//! * the task hierarchy is a rooted tree with consistent parent/child links;
//! * variables are owned by exactly one task, with unique names per task;
//! * input variables, artifact-relation tuples and service conditions only
//!   mention variables of the appropriate task;
//! * relation atoms have the right arity and argument sorts, arithmetic
//!   atoms use only numeric variables, equalities are sort-consistent;
//! * input/output mappings are 1–1, sort-preserving and connect the right
//!   tasks;
//! * restriction 3: variables written by returning children are disjoint
//!   from the task's input variables;
//! * the artifact-relation tuple `s̄^T` consists of distinct ID variables
//!   (restrictions 5 and 7 are enforced by construction: one relation per
//!   task, fixed tuple);
//! * the global pre-condition `Π` only mentions root input variables.

use crate::condition::{Atom, Condition, Term};
use crate::ids::{TaskId, VarId};
use crate::schema::AttrKind;
use crate::system::ArtifactSystem;
use crate::task::VarSort;
use std::collections::BTreeSet;
use std::fmt;

/// An error found while validating an artifact system.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidationError {
    /// No root task was declared.
    NoRootTask,
    /// A foreign key referenced a relation name that does not exist.
    UnknownRelation(String),
    /// The hierarchy is not a tree (broken parent/child links or a cycle).
    BrokenHierarchy(String),
    /// A variable is referenced by a task that does not own it.
    ForeignVariable {
        /// The task in whose declaration the problem was found.
        task: String,
        /// Description of where the variable was used.
        context: String,
    },
    /// Duplicate variable name within a task.
    DuplicateVariableName(String, String),
    /// A condition mentions a variable outside its allowed scope.
    ConditionScope {
        /// The task whose service owns the condition.
        task: String,
        /// Which condition (service name / role).
        context: String,
        /// The offending variable name.
        variable: String,
    },
    /// A relation atom has the wrong number of arguments.
    RelationArity {
        /// Relation name.
        relation: String,
        /// Expected arity.
        expected: usize,
        /// Found arity.
        found: usize,
    },
    /// A term of the wrong sort was used (e.g. a numeric variable in an ID
    /// position).
    SortMismatch(String),
    /// An input or output mapping is not 1–1 or connects the wrong tasks.
    BadMapping(String),
    /// Restriction 3 violated: a returned-into parent variable is also an
    /// input variable of the parent task.
    ReturnOverlapsInput {
        /// Parent task name.
        task: String,
        /// Offending variable name.
        variable: String,
    },
    /// The artifact-relation tuple is not a sequence of distinct ID
    /// variables of the task.
    BadArtifactTuple(String),
    /// The global pre-condition mentions a variable that is not a root input
    /// variable.
    PreconditionScope(String),
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::NoRootTask => write!(f, "no root task declared"),
            ValidationError::UnknownRelation(n) => write!(f, "unknown relation `{n}`"),
            ValidationError::BrokenHierarchy(m) => write!(f, "broken task hierarchy: {m}"),
            ValidationError::ForeignVariable { task, context } => {
                write!(f, "task `{task}` uses a variable it does not own ({context})")
            }
            ValidationError::DuplicateVariableName(t, v) => {
                write!(f, "task `{t}` declares variable `{v}` more than once")
            }
            ValidationError::ConditionScope {
                task,
                context,
                variable,
            } => write!(
                f,
                "condition {context} of task `{task}` mentions out-of-scope variable `{variable}`"
            ),
            ValidationError::RelationArity {
                relation,
                expected,
                found,
            } => write!(
                f,
                "relation atom `{relation}` has {found} arguments, expected {expected}"
            ),
            ValidationError::SortMismatch(m) => write!(f, "sort mismatch: {m}"),
            ValidationError::BadMapping(m) => write!(f, "bad input/output mapping: {m}"),
            ValidationError::ReturnOverlapsInput { task, variable } => write!(
                f,
                "restriction 3 violated in task `{task}`: returned variable `{variable}` is also an input variable"
            ),
            ValidationError::BadArtifactTuple(m) => write!(f, "bad artifact relation tuple: {m}"),
            ValidationError::PreconditionScope(v) => write!(
                f,
                "global pre-condition mentions non-input variable `{v}`"
            ),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validates an artifact system, returning the first problem found.
pub fn validate(system: &ArtifactSystem) -> Result<(), ValidationError> {
    let schema = &system.schema;

    check_hierarchy(system)?;

    // Variable ownership and name uniqueness.
    for (tid, task) in schema.tasks() {
        let mut names = BTreeSet::new();
        for &v in &task.variables {
            let var = schema.variable(v);
            if var.task != tid {
                return Err(ValidationError::ForeignVariable {
                    task: task.name.clone(),
                    context: format!("variable list contains `{}`", var.name),
                });
            }
            if !names.insert(var.name.clone()) {
                return Err(ValidationError::DuplicateVariableName(
                    task.name.clone(),
                    var.name.clone(),
                ));
            }
        }
        for &v in &task.input_vars {
            if !task.variables.contains(&v) {
                return Err(ValidationError::ForeignVariable {
                    task: task.name.clone(),
                    context: format!("input variable `{}`", schema.variable(v).name),
                });
            }
        }
    }

    // Artifact relation tuples: distinct ID variables of the task.
    for (_, task) in schema.tasks() {
        if let Some(ar) = &task.artifact_relation {
            let mut seen = BTreeSet::new();
            for &v in &ar.tuple {
                if !task.variables.contains(&v) {
                    return Err(ValidationError::BadArtifactTuple(format!(
                        "task `{}`: tuple variable not owned by the task",
                        task.name
                    )));
                }
                if schema.variable(v).sort != VarSort::Id {
                    return Err(ValidationError::BadArtifactTuple(format!(
                        "task `{}`: tuple variable `{}` is not an ID variable",
                        task.name,
                        schema.variable(v).name
                    )));
                }
                if !seen.insert(v) {
                    return Err(ValidationError::BadArtifactTuple(format!(
                        "task `{}`: tuple variable `{}` repeated",
                        task.name,
                        schema.variable(v).name
                    )));
                }
            }
        }
    }

    // Conditions: scope and sorts.
    for (tid, task) in schema.tasks() {
        let own_scope: BTreeSet<VarId> = task.variables.iter().copied().collect();
        for service in &task.internal_services {
            check_condition(system, &service.pre, &own_scope, tid, &format!("pre({})", service.name))?;
            check_condition(system, &service.post, &own_scope, tid, &format!("post({})", service.name))?;
        }
        // Opening pre-condition is over the parent's variables (true and thus
        // vacuous for the root).
        if let Some(parent) = task.parent {
            let parent_scope: BTreeSet<VarId> =
                schema.task(parent).variables.iter().copied().collect();
            check_condition(system, &task.opening.pre, &parent_scope, tid, "opening pre")?;
        }
        check_condition(system, &task.closing.pre, &own_scope, tid, "closing pre")?;
    }

    // Input/output mappings.
    for (_, task) in schema.tasks() {
        let Some(parent) = task.parent else { continue };
        let parent_task = schema.task(parent);
        let mut seen_child = BTreeSet::new();
        let mut seen_parent = BTreeSet::new();
        for (child_var, parent_var) in &task.opening.input_map {
            if !task.variables.contains(child_var) {
                return Err(ValidationError::BadMapping(format!(
                    "input map of `{}` maps a variable the child does not own",
                    task.name
                )));
            }
            if !parent_task.variables.contains(parent_var) {
                return Err(ValidationError::BadMapping(format!(
                    "input map of `{}` reads a variable the parent does not own",
                    task.name
                )));
            }
            if !seen_child.insert(*child_var) || !seen_parent.insert(*parent_var) {
                return Err(ValidationError::BadMapping(format!(
                    "input map of `{}` is not 1-1",
                    task.name
                )));
            }
            if schema.variable(*child_var).sort != schema.variable(*parent_var).sort {
                return Err(ValidationError::SortMismatch(format!(
                    "input map of `{}` maps `{}` to `{}` of a different sort",
                    task.name,
                    schema.variable(*parent_var).name,
                    schema.variable(*child_var).name
                )));
            }
            if !task.input_vars.contains(child_var) {
                return Err(ValidationError::BadMapping(format!(
                    "input map of `{}` targets `{}` which is not declared as an input variable",
                    task.name,
                    schema.variable(*child_var).name
                )));
            }
        }
        let mut seen_out_parent = BTreeSet::new();
        let mut seen_out_child = BTreeSet::new();
        for (parent_var, child_var) in &task.closing.output_map {
            if !parent_task.variables.contains(parent_var) {
                return Err(ValidationError::BadMapping(format!(
                    "output map of `{}` writes a variable the parent does not own",
                    task.name
                )));
            }
            if !task.variables.contains(child_var) {
                return Err(ValidationError::BadMapping(format!(
                    "output map of `{}` returns a variable the child does not own",
                    task.name
                )));
            }
            if !seen_out_parent.insert(*parent_var) || !seen_out_child.insert(*child_var) {
                return Err(ValidationError::BadMapping(format!(
                    "output map of `{}` is not 1-1",
                    task.name
                )));
            }
            if schema.variable(*child_var).sort != schema.variable(*parent_var).sort {
                return Err(ValidationError::SortMismatch(format!(
                    "output map of `{}` returns `{}` into `{}` of a different sort",
                    task.name,
                    schema.variable(*child_var).name,
                    schema.variable(*parent_var).name
                )));
            }
            // Restriction 3: returned-into parent variables are disjoint from
            // the parent's input variables.
            if parent_task.input_vars.contains(parent_var) {
                return Err(ValidationError::ReturnOverlapsInput {
                    task: parent_task.name.clone(),
                    variable: schema.variable(*parent_var).name.clone(),
                });
            }
        }
    }

    // Global pre-condition scope: root input variables only.
    let root_inputs: BTreeSet<VarId> = schema
        .task(schema.root)
        .input_vars
        .iter()
        .copied()
        .collect();
    for v in system.precondition.variables() {
        if !root_inputs.contains(&v) {
            return Err(ValidationError::PreconditionScope(
                schema.variable(v).name.clone(),
            ));
        }
    }
    // Sort-check the precondition too (scope = root inputs).
    check_condition(
        system,
        &system.precondition,
        &root_inputs,
        schema.root,
        "global precondition",
    )?;

    Ok(())
}

fn check_hierarchy(system: &ArtifactSystem) -> Result<(), ValidationError> {
    let schema = &system.schema;
    if schema.task(schema.root).parent.is_some() {
        return Err(ValidationError::BrokenHierarchy(
            "root task has a parent".into(),
        ));
    }
    // Parent/child link consistency.
    for (tid, task) in schema.tasks() {
        for &c in &task.children {
            if schema.task(c).parent != Some(tid) {
                return Err(ValidationError::BrokenHierarchy(format!(
                    "task `{}` lists `{}` as a child but is not its parent",
                    task.name,
                    schema.task(c).name
                )));
            }
        }
        if let Some(p) = task.parent {
            if !schema.task(p).children.contains(&tid) {
                return Err(ValidationError::BrokenHierarchy(format!(
                    "task `{}` has parent `{}` which does not list it as a child",
                    task.name,
                    schema.task(p).name
                )));
            }
        } else if tid != schema.root {
            return Err(ValidationError::BrokenHierarchy(format!(
                "task `{}` has no parent but is not the root",
                task.name
            )));
        }
    }
    // Reachability from the root (tree-ness / no cycles).
    let mut reached = BTreeSet::new();
    let mut stack = vec![schema.root];
    while let Some(t) = stack.pop() {
        if !reached.insert(t) {
            return Err(ValidationError::BrokenHierarchy(
                "cycle in the task hierarchy".into(),
            ));
        }
        stack.extend(schema.task(t).children.iter().copied());
    }
    if reached.len() != schema.task_count() {
        return Err(ValidationError::BrokenHierarchy(
            "some tasks are unreachable from the root".into(),
        ));
    }
    Ok(())
}

fn check_condition(
    system: &ArtifactSystem,
    condition: &Condition,
    scope: &BTreeSet<VarId>,
    task: TaskId,
    context: &str,
) -> Result<(), ValidationError> {
    let schema = &system.schema;
    let task_name = schema.task(task).name.clone();
    for v in condition.variables() {
        if !scope.contains(&v) {
            return Err(ValidationError::ConditionScope {
                task: task_name.clone(),
                context: context.to_string(),
                variable: schema.variable(v).name.clone(),
            });
        }
    }
    for atom in condition.atoms() {
        match atom {
            Atom::Eq(a, b) => {
                let sort = |t: &Term| match t {
                    Term::Var(v) => Some(schema.variable(*v).sort),
                    Term::Null => Some(VarSort::Id),
                    Term::Const(_) => Some(VarSort::Numeric),
                };
                if sort(&a) != sort(&b) {
                    return Err(ValidationError::SortMismatch(format!(
                        "equality in {context} of `{task_name}` compares terms of different sorts"
                    )));
                }
            }
            Atom::Relation { relation, args } => {
                let rel = schema.database.relation(relation);
                if args.len() != rel.arity() {
                    return Err(ValidationError::RelationArity {
                        relation: rel.name.clone(),
                        expected: rel.arity(),
                        found: args.len(),
                    });
                }
                for (attr, term) in rel.attributes.iter().zip(args.iter()) {
                    let want = match attr.kind {
                        AttrKind::Key | AttrKind::ForeignKey(_) => VarSort::Id,
                        AttrKind::Numeric => VarSort::Numeric,
                    };
                    let got = match term {
                        Term::Var(v) => schema.variable(*v).sort,
                        Term::Null => VarSort::Id,
                        Term::Const(_) => VarSort::Numeric,
                    };
                    if want != got {
                        return Err(ValidationError::SortMismatch(format!(
                            "argument `{}` of relation atom `{}` in {context} of `{task_name}` has the wrong sort",
                            attr.name, rel.name
                        )));
                    }
                }
            }
            Atom::Arith(c) => {
                for v in c.variables() {
                    if schema.variable(*v).sort != VarSort::Numeric {
                        return Err(ValidationError::SortMismatch(format!(
                            "arithmetic atom in {context} of `{task_name}` uses non-numeric variable `{}`",
                            schema.variable(*v).name
                        )));
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SystemBuilder;
    use crate::task::SetUpdate;
    use has_arith::{LinExpr, LinearConstraint};

    #[test]
    fn accepts_a_well_formed_system() {
        let mut b = SystemBuilder::new("ok");
        b.relation("R", &["v"], &[]);
        let root = b.root_task("Root");
        let x = b.id_var(root, "x");
        let n = b.num_var(root, "n");
        b.input_vars(root, &[x]);
        b.internal_service(
            root,
            "s",
            Condition::not_null(x),
            Condition::arith(LinearConstraint::ge(LinExpr::var(n), LinExpr::zero())),
            SetUpdate::None,
        );
        assert!(b.build().is_ok());
    }

    #[test]
    fn rejects_condition_using_other_tasks_variable() {
        let mut b = SystemBuilder::new("bad");
        let root = b.root_task("Root");
        let _x = b.id_var(root, "x");
        let child = b.child_task(root, "Child");
        let cx = b.id_var(child, "cx");
        // Root internal service mentioning the child's variable.
        b.internal_service(root, "s", Condition::is_null(cx), Condition::True, SetUpdate::None);
        assert!(matches!(
            b.build(),
            Err(ValidationError::ConditionScope { .. })
        ));
    }

    #[test]
    fn rejects_return_into_input_variable() {
        let mut b = SystemBuilder::new("bad");
        let root = b.root_task("Root");
        let x = b.id_var(root, "x");
        b.input_vars(root, &[x]);
        let child = b.child_task(root, "Child");
        let cy = b.id_var(child, "cy");
        b.map_output(child, x, cy);
        assert!(matches!(
            b.build(),
            Err(ValidationError::ReturnOverlapsInput { .. })
        ));
    }

    #[test]
    fn rejects_sort_mismatch_in_mapping() {
        let mut b = SystemBuilder::new("bad");
        let root = b.root_task("Root");
        let x = b.id_var(root, "x");
        let child = b.child_task(root, "Child");
        let cn = b.num_var(child, "cn");
        b.map_input(child, cn, x);
        assert!(matches!(b.build(), Err(ValidationError::SortMismatch(_))));
    }

    #[test]
    fn rejects_numeric_variable_in_artifact_tuple() {
        let mut b = SystemBuilder::new("bad");
        let root = b.root_task("Root");
        let n = b.num_var(root, "n");
        b.artifact_relation(root, "S", &[n]);
        assert!(matches!(
            b.build(),
            Err(ValidationError::BadArtifactTuple(_))
        ));
    }

    #[test]
    fn rejects_relation_atom_with_wrong_arity() {
        let mut b = SystemBuilder::new("bad");
        b.relation("R", &["v"], &[]);
        let root = b.root_task("Root");
        let x = b.id_var(root, "x");
        let rel = b.relation_id("R").unwrap();
        b.internal_service(
            root,
            "s",
            Condition::relation(rel, vec![Term::Var(x)]),
            Condition::True,
            SetUpdate::None,
        );
        assert!(matches!(
            b.build(),
            Err(ValidationError::RelationArity { .. })
        ));
    }

    #[test]
    fn rejects_precondition_over_non_input_variables() {
        let mut b = SystemBuilder::new("bad");
        let root = b.root_task("Root");
        let x = b.id_var(root, "x");
        let y = b.id_var(root, "y");
        b.input_vars(root, &[x]);
        b.precondition(Condition::not_null(y));
        assert!(matches!(
            b.build(),
            Err(ValidationError::PreconditionScope(_))
        ));
    }

    #[test]
    fn rejects_equality_between_id_and_numeric() {
        let mut b = SystemBuilder::new("bad");
        let root = b.root_task("Root");
        let x = b.id_var(root, "x");
        let n = b.num_var(root, "n");
        b.internal_service(root, "s", Condition::var_eq(x, n), Condition::True, SetUpdate::None);
        assert!(matches!(b.build(), Err(ValidationError::SortMismatch(_))));
    }

    #[test]
    fn error_messages_are_human_readable() {
        let e = ValidationError::ReturnOverlapsInput {
            task: "Root".into(),
            variable: "x".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("restriction 3"));
        assert!(msg.contains("Root"));
    }
}
