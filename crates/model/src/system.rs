//! Artifact schemas and artifact systems (Definitions 3, 4 and 7).

use crate::condition::Condition;
use crate::ids::{ServiceRef, TaskId, VarId};
use crate::schema::{DatabaseSchema, SchemaClass};
use crate::task::{TaskSchema, VarSort, Variable};

/// An artifact schema `A = ⟨H, DB⟩`: a database schema plus a rooted tree of
/// task schemas with pairwise disjoint variables (Definition 3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArtifactSchema {
    /// The underlying database schema.
    pub database: DatabaseSchema,
    /// All artifact variables of all tasks, indexed by [`VarId`].
    pub variables: Vec<Variable>,
    /// All task schemas, indexed by [`TaskId`]. The root task is
    /// [`ArtifactSchema::root`].
    pub tasks: Vec<TaskSchema>,
    /// The root task of the hierarchy (`T1` in the paper).
    pub root: TaskId,
}

impl ArtifactSchema {
    /// The task with the given id.
    pub fn task(&self, id: TaskId) -> &TaskSchema {
        &self.tasks[id.0]
    }

    /// The variable with the given id.
    pub fn variable(&self, id: VarId) -> &Variable {
        &self.variables[id.0]
    }

    /// Number of tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Iterates over `(id, task)` pairs.
    pub fn tasks(&self) -> impl Iterator<Item = (TaskId, &TaskSchema)> {
        self.tasks.iter().enumerate().map(|(i, t)| (TaskId(i), t))
    }

    /// Iterates over `(id, variable)` pairs.
    pub fn variables(&self) -> impl Iterator<Item = (VarId, &Variable)> {
        self.variables
            .iter()
            .enumerate()
            .map(|(i, v)| (VarId(i), v))
    }

    /// Looks up a task by name.
    pub fn task_by_name(&self, name: &str) -> Option<TaskId> {
        self.tasks.iter().position(|t| t.name == name).map(TaskId)
    }

    /// Looks up a variable of a task by name.
    pub fn var_by_name(&self, task: TaskId, name: &str) -> Option<VarId> {
        self.task(task)
            .variables
            .iter()
            .copied()
            .find(|v| self.variable(*v).name == name)
    }

    /// The ID variables of a task (`x̄^T_id`).
    pub fn id_vars(&self, task: TaskId) -> Vec<VarId> {
        self.task(task)
            .variables
            .iter()
            .copied()
            .filter(|v| self.variable(*v).sort == VarSort::Id)
            .collect()
    }

    /// The numeric variables of a task (`x̄^T_ℝ`).
    pub fn numeric_vars(&self, task: TaskId) -> Vec<VarId> {
        self.task(task)
            .variables
            .iter()
            .copied()
            .filter(|v| self.variable(*v).sort == VarSort::Numeric)
            .collect()
    }

    /// The descendants of a task, excluding the task itself (`desc(T)`),
    /// in pre-order.
    pub fn descendants(&self, task: TaskId) -> Vec<TaskId> {
        let mut out = Vec::new();
        let mut stack: Vec<TaskId> = self.task(task).children.clone();
        while let Some(t) = stack.pop() {
            out.push(t);
            stack.extend(self.task(t).children.iter().copied());
        }
        out
    }

    /// Depth of the hierarchy `H` (a single task has depth 1).
    pub fn depth(&self) -> usize {
        fn rec(schema: &ArtifactSchema, t: TaskId) -> usize {
            1 + schema
                .task(t)
                .children
                .iter()
                .map(|c| rec(schema, *c))
                .max()
                .unwrap_or(0)
        }
        rec(self, self.root)
    }

    /// Depth of a specific task below the root (the root has depth 0).
    pub fn task_depth(&self, task: TaskId) -> usize {
        let mut d = 0;
        let mut cur = task;
        while let Some(p) = self.task(cur).parent {
            d += 1;
            cur = p;
        }
        d
    }

    /// The services observable in runs of task `T` (`Σ^obs_T`): the task's
    /// internal services, its own opening and closing services, and the
    /// opening/closing services of its children.
    pub fn observable_services(&self, task: TaskId) -> Vec<ServiceRef> {
        let mut out = Vec::new();
        let t = self.task(task);
        for i in 0..t.internal_services.len() {
            out.push(ServiceRef::Internal(task, i));
        }
        out.push(ServiceRef::Opening(task));
        out.push(ServiceRef::Closing(task));
        for &c in &t.children {
            out.push(ServiceRef::Opening(c));
            out.push(ServiceRef::Closing(c));
        }
        out
    }

    /// Human-readable name of a service reference.
    pub fn service_name(&self, service: ServiceRef) -> String {
        match service {
            ServiceRef::Internal(t, i) => {
                format!(
                    "{}::{}",
                    self.task(t).name,
                    self.task(t).internal_services[i].name
                )
            }
            ServiceRef::Opening(t) => format!("open({})", self.task(t).name),
            ServiceRef::Closing(t) => format!("close({})", self.task(t).name),
        }
    }

    /// The paper's navigation depth `h(T)` (Section 4.1):
    /// `h(T) = 1 + |x̄^T| · F(δ)` where `δ = 1` for leaf tasks and
    /// `δ = max h(T_c)` over children otherwise, and `F(n)` is the maximum
    /// number of foreign-key paths of length ≤ n from any relation.
    ///
    /// Both the path count and the result are clamped at `cap`; for cyclic
    /// schemas the exact value is astronomically large (see DESIGN.md §5.3),
    /// and every caller of `h(T)` treats it as "navigate at most this deep".
    pub fn navigation_depth(&self, task: TaskId, cap: usize) -> usize {
        let t = self.task(task);
        let delta = if t.is_leaf() {
            1
        } else {
            t.children
                .iter()
                .map(|c| self.navigation_depth(*c, cap))
                .max()
                .unwrap_or(1)
        };
        let f = self.database.max_paths_up_to(delta, cap);
        (1usize)
            .saturating_add(t.variables.len().saturating_mul(f))
            .min(cap)
    }

    /// Classification of the database schema (acyclic / linearly-cyclic /
    /// cyclic).
    pub fn schema_class(&self) -> SchemaClass {
        self.database.classify()
    }

    /// Returns `true` if any task declares an artifact relation.
    pub fn uses_artifact_relations(&self) -> bool {
        self.tasks.iter().any(|t| t.artifact_relation.is_some())
    }

    /// Returns `true` if any condition in the system uses arithmetic atoms.
    pub fn uses_arithmetic(&self) -> bool {
        self.tasks.iter().any(|t| {
            t.internal_services
                .iter()
                .any(|s| !s.pre.arithmetic_atoms().is_empty() || !s.post.arithmetic_atoms().is_empty())
                || !t.opening.pre.arithmetic_atoms().is_empty()
                || !t.closing.pre.arithmetic_atoms().is_empty()
        })
    }

    /// Total size of the specification: number of tasks + variables +
    /// services + atoms, the `N` of Tables 1 and 2.
    pub fn size(&self) -> usize {
        let mut n = self.tasks.len() + self.variables.len() + self.database.len();
        for t in &self.tasks {
            n += t.internal_services.len();
            for s in &t.internal_services {
                n += s.pre.atoms().len() + s.post.atoms().len();
            }
            n += t.opening.pre.atoms().len() + t.closing.pre.atoms().len();
        }
        n
    }
}

/// A Hierarchical Artifact System `Γ = ⟨A, Σ, Π⟩` (Definition 7).
///
/// The services `Σ` are stored inside the task schemas of `A`; `Π` is the
/// global pre-condition on the root task's input variables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArtifactSystem {
    /// The artifact schema (tasks + database schema + services).
    pub schema: ArtifactSchema,
    /// The global pre-condition `Π` over the root task's input variables.
    pub precondition: Condition,
}

impl ArtifactSystem {
    /// The root task id.
    pub fn root(&self) -> TaskId {
        self.schema.root
    }

    /// Shorthand for [`ArtifactSchema::task`].
    pub fn task(&self, id: TaskId) -> &TaskSchema {
        self.schema.task(id)
    }

    /// Shorthand for [`ArtifactSchema::variable`].
    pub fn variable(&self, id: VarId) -> &Variable {
        self.schema.variable(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SystemBuilder;

    /// A small two-level system used by several unit tests in this crate.
    fn sample() -> ArtifactSystem {
        let mut b = SystemBuilder::new("sample");
        let hotels = b.relation("HOTELS", &["price"], &[]);
        let _flights = b.relation("FLIGHTS", &["price"], &[("hotel", "HOTELS")]);
        let root = b.root_task("Root");
        let x = b.id_var(root, "x");
        let y = b.id_var(root, "y");
        let amount = b.num_var(root, "amount");
        b.input_vars(root, &[x]);
        let child = b.child_task(root, "Child");
        let cx = b.id_var(child, "cx");
        let cy = b.id_var(child, "cy");
        b.open_when(child, Condition::True);
        b.map_input(child, cx, x);
        b.close_when(child, Condition::True);
        b.map_output(child, y, cy);
        let _ = (hotels, amount);
        b.internal_service(root, "noop", Condition::True, Condition::True, crate::SetUpdate::None);
        b.build().expect("valid sample system")
    }

    #[test]
    fn hierarchy_navigation() {
        let sys = sample();
        let schema = &sys.schema;
        assert_eq!(schema.task_count(), 2);
        assert_eq!(schema.depth(), 2);
        let root = schema.root;
        let child = schema.task_by_name("Child").unwrap();
        assert_eq!(schema.task_depth(root), 0);
        assert_eq!(schema.task_depth(child), 1);
        assert_eq!(schema.descendants(root), vec![child]);
        assert!(schema.descendants(child).is_empty());
    }

    #[test]
    fn variable_lookup_and_sorts() {
        let sys = sample();
        let schema = &sys.schema;
        let root = schema.root;
        let x = schema.var_by_name(root, "x").unwrap();
        let y = schema.var_by_name(root, "y").unwrap();
        assert_eq!(schema.variable(x).sort, VarSort::Id);
        assert_eq!(schema.id_vars(root), vec![x, y]);
        assert_eq!(schema.numeric_vars(root).len(), 1);
        assert!(schema.var_by_name(root, "cx").is_none());
    }

    #[test]
    fn observable_services_cover_children() {
        let sys = sample();
        let schema = &sys.schema;
        let root = schema.root;
        let child = schema.task_by_name("Child").unwrap();
        let obs = schema.observable_services(root);
        assert!(obs.contains(&ServiceRef::Internal(root, 0)));
        assert!(obs.contains(&ServiceRef::Opening(child)));
        assert!(obs.contains(&ServiceRef::Closing(child)));
        assert!(obs.contains(&ServiceRef::Opening(root)));
        let name = schema.service_name(ServiceRef::Internal(root, 0));
        assert!(name.contains("noop"));
    }

    #[test]
    fn schema_level_flags() {
        let sys = sample();
        assert_eq!(sys.schema.schema_class(), SchemaClass::Acyclic);
        assert!(!sys.schema.uses_artifact_relations());
        assert!(!sys.schema.uses_arithmetic());
        assert!(sys.schema.size() > 4);
        assert!(sys.schema.navigation_depth(sys.root(), 64) >= 1);
    }
}
