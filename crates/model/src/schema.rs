//! Database schemas (Definition 1) and foreign-key graph analysis.
//!
//! Every relation has a key attribute `ID`, a set of foreign-key attributes
//! each referencing the `ID` of some relation, and a set of numeric non-key
//! attributes. The shape of the induced foreign-key graph — acyclic,
//! linearly-cyclic (every relation on at most one simple cycle) or cyclic —
//! is the parameter that drives the complexity columns of Tables 1 and 2, so
//! the classification is computed here once and reused by the verifier, the
//! workload generators and the benchmarks.

use crate::ids::RelationId;
use std::collections::BTreeSet;
use std::fmt;

/// The kind of a relation attribute.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AttrKind {
    /// The key attribute `ID`. Exactly one per relation, always attribute 0.
    Key,
    /// A numeric (real-valued) non-key attribute.
    Numeric,
    /// A foreign-key attribute referencing the `ID` of the given relation.
    ForeignKey(RelationId),
}

/// A relation attribute.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name, unique within its relation.
    pub name: String,
    /// Kind of the attribute.
    pub kind: AttrKind,
}

/// A database relation `R(ID, A₁..Aₙ, F₁..Fₘ)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Relation {
    /// Relation name, unique within the schema.
    pub name: String,
    /// Attributes; index 0 is always the key attribute `ID`.
    pub attributes: Vec<Attribute>,
}

impl Relation {
    /// Arity of the relation (number of attributes including the key).
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Indices and target relations of the foreign-key attributes.
    pub fn foreign_keys(&self) -> impl Iterator<Item = (usize, RelationId)> + '_ {
        self.attributes
            .iter()
            .enumerate()
            .filter_map(|(i, a)| match a.kind {
                AttrKind::ForeignKey(r) => Some((i, r)),
                _ => None,
            })
    }

    /// Indices of the numeric attributes.
    pub fn numeric_attributes(&self) -> impl Iterator<Item = usize> + '_ {
        self.attributes
            .iter()
            .enumerate()
            .filter_map(|(i, a)| matches!(a.kind, AttrKind::Numeric).then_some(i))
    }

    /// Looks up an attribute index by name.
    pub fn attribute_index(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name == name)
    }
}

/// Classification of the foreign-key graph of a schema (Section 2 and
/// Appendix C.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SchemaClass {
    /// No cycles in the foreign-key graph.
    Acyclic,
    /// Every relation lies on at most one simple cycle.
    LinearlyCyclic,
    /// Arbitrary cycles.
    Cyclic,
}

impl fmt::Display for SchemaClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SchemaClass::Acyclic => "acyclic",
            SchemaClass::LinearlyCyclic => "linearly-cyclic",
            SchemaClass::Cyclic => "cyclic",
        };
        f.write_str(s)
    }
}

/// A database schema: a set of relations with key and foreign-key
/// constraints (Definition 1).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DatabaseSchema {
    /// The relations of the schema, indexed by [`RelationId`].
    pub relations: Vec<Relation>,
}

impl DatabaseSchema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Returns `true` if the schema has no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// The relation with the given id.
    pub fn relation(&self, id: RelationId) -> &Relation {
        &self.relations[id.0]
    }

    /// Looks up a relation by name.
    pub fn relation_by_name(&self, name: &str) -> Option<RelationId> {
        self.relations
            .iter()
            .position(|r| r.name == name)
            .map(RelationId)
    }

    /// Iterates over `(id, relation)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RelationId, &Relation)> {
        self.relations
            .iter()
            .enumerate()
            .map(|(i, r)| (RelationId(i), r))
    }

    /// Maximum arity over all relations.
    pub fn max_arity(&self) -> usize {
        self.relations.iter().map(Relation::arity).max().unwrap_or(0)
    }

    /// The edges of the foreign-key graph `FK`: one edge `(from, to)` per
    /// foreign-key attribute.
    pub fn fk_edges(&self) -> Vec<(RelationId, RelationId)> {
        let mut edges = Vec::new();
        for (id, rel) in self.iter() {
            for (_, target) in rel.foreign_keys() {
                edges.push((id, target));
            }
        }
        edges
    }

    /// Classifies the schema as acyclic, linearly-cyclic or cyclic.
    pub fn classify(&self) -> SchemaClass {
        if self.is_acyclic() {
            SchemaClass::Acyclic
        } else if self.is_linearly_cyclic() {
            SchemaClass::LinearlyCyclic
        } else {
            SchemaClass::Cyclic
        }
    }

    /// Returns `true` if the foreign-key graph has no cycle.
    pub fn is_acyclic(&self) -> bool {
        // Kahn-style topological sort over FK edges.
        let n = self.relations.len();
        let mut out_degree = vec![0usize; n];
        let mut incoming: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (from, to) in self.fk_edges() {
            out_degree[from.0] += 1;
            incoming[to.0].push(from.0);
        }
        let mut stack: Vec<usize> = (0..n).filter(|&i| out_degree[i] == 0).collect();
        let mut removed = 0usize;
        while let Some(v) = stack.pop() {
            removed += 1;
            for &u in &incoming[v] {
                out_degree[u] -= 1;
                if out_degree[u] == 0 {
                    stack.push(u);
                }
            }
        }
        removed == n
    }

    /// Returns `true` if every relation lies on at most one simple cycle of
    /// the foreign-key graph.
    ///
    /// This enumerates simple cycles (the FK graphs of HAS schemas are tiny —
    /// a handful of relations), counting for each node the number of distinct
    /// simple cycles through it.
    pub fn is_linearly_cyclic(&self) -> bool {
        let n = self.relations.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (from, to) in self.fk_edges() {
            if !adj[from.0].contains(&to.0) {
                adj[from.0].push(to.0);
            }
        }
        // Count simple cycles through each node by DFS enumeration of simple
        // cycles with a canonical least starting node (Johnson-style but
        // naive, adequate for schema-sized graphs).
        let mut cycles_through = vec![0usize; n];
        let mut cycles: BTreeSet<Vec<usize>> = BTreeSet::new();
        for start in 0..n {
            let mut path = vec![start];
            let mut on_path = vec![false; n];
            on_path[start] = true;
            Self::dfs_cycles(start, start, &adj, &mut path, &mut on_path, &mut cycles);
        }
        for cycle in &cycles {
            for &v in cycle {
                cycles_through[v] += 1;
            }
        }
        cycles_through.iter().all(|&c| c <= 1)
    }

    fn dfs_cycles(
        start: usize,
        current: usize,
        adj: &[Vec<usize>],
        path: &mut Vec<usize>,
        on_path: &mut Vec<bool>,
        cycles: &mut BTreeSet<Vec<usize>>,
    ) {
        for &next in &adj[current] {
            if next == start {
                // Canonicalize: cycles are recorded rotated to start at their
                // minimum node, so each simple cycle is counted once.
                let min_pos = path
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, v)| **v)
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                let mut canon = Vec::with_capacity(path.len());
                for k in 0..path.len() {
                    canon.push(path[(min_pos + k) % path.len()]);
                }
                cycles.insert(canon);
            } else if !on_path[next] && next > start {
                // Only explore nodes larger than `start` so each cycle is
                // enumerated from its minimum node exactly once.
                on_path[next] = true;
                path.push(next);
                Self::dfs_cycles(start, next, adj, path, on_path, cycles);
                path.pop();
                on_path[next] = false;
            }
        }
    }

    /// `F(n)`: the maximum, over all relations `R`, of the number of distinct
    /// foreign-key navigation paths of length at most `n` starting from `R`
    /// (Section 4.1, used to define the navigation depth `h(T)`).
    ///
    /// The count is capped at `cap` to keep it usable for cyclic schemas,
    /// where the true value grows exponentially.
    pub fn max_paths_up_to(&self, n: usize, cap: usize) -> usize {
        let mut best = 0usize;
        for (id, _) in self.iter() {
            let mut count = 0usize;
            // BFS over paths; each path is identified by its end relation and
            // remaining budget, but distinct paths must be counted, so we
            // track a frontier of path counts per relation.
            let mut frontier = vec![(id, 0usize)];
            while let Some((rel, len)) = frontier.pop() {
                if len >= n {
                    continue;
                }
                for (_, target) in self.relation(rel).foreign_keys() {
                    count += 1;
                    if count >= cap {
                        return cap;
                    }
                    frontier.push((target, len + 1));
                }
            }
            best = best.max(count);
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(name: &str, fks: &[(usize, &str)], nums: &[&str]) -> Relation {
        let mut attributes = vec![Attribute {
            name: "id".into(),
            kind: AttrKind::Key,
        }];
        for n in nums {
            attributes.push(Attribute {
                name: (*n).into(),
                kind: AttrKind::Numeric,
            });
        }
        for (target, n) in fks {
            attributes.push(Attribute {
                name: (*n).into(),
                kind: AttrKind::ForeignKey(RelationId(*target)),
            });
        }
        Relation {
            name: name.into(),
            attributes,
        }
    }

    #[test]
    fn star_schema_is_acyclic() {
        // Fact -> Dim1, Fact -> Dim2
        let schema = DatabaseSchema {
            relations: vec![
                rel("FACT", &[(1, "d1"), (2, "d2")], &["measure"]),
                rel("DIM1", &[], &["a"]),
                rel("DIM2", &[], &["b"]),
            ],
        };
        assert_eq!(schema.classify(), SchemaClass::Acyclic);
        assert!(schema.is_acyclic());
    }

    #[test]
    fn travel_schema_is_acyclic() {
        // FLIGHTS(id, price, comp_hotel_id -> HOTELS), HOTELS(id, ...)
        let schema = DatabaseSchema {
            relations: vec![
                rel("FLIGHTS", &[(1, "comp_hotel_id")], &["price"]),
                rel("HOTELS", &[], &["unit_price", "discount_price"]),
            ],
        };
        assert_eq!(schema.classify(), SchemaClass::Acyclic);
    }

    #[test]
    fn self_loop_is_linearly_cyclic() {
        // EMPLOYEE(id, manager_id -> EMPLOYEE)
        let schema = DatabaseSchema {
            relations: vec![rel("EMPLOYEE", &[(0, "manager_id")], &["salary"])],
        };
        assert_eq!(schema.classify(), SchemaClass::LinearlyCyclic);
        assert!(!schema.is_acyclic());
    }

    #[test]
    fn two_cycles_through_one_relation_is_cyclic() {
        // A -> B -> A  and  A -> C -> A : two simple cycles through A.
        let schema = DatabaseSchema {
            relations: vec![
                rel("A", &[(1, "to_b"), (2, "to_c")], &[]),
                rel("B", &[(0, "to_a")], &[]),
                rel("C", &[(0, "to_a")], &[]),
            ],
        };
        assert_eq!(schema.classify(), SchemaClass::Cyclic);
    }

    #[test]
    fn disjoint_cycles_are_linearly_cyclic() {
        // A <-> B and C <-> D: two cycles, but each relation on exactly one.
        let schema = DatabaseSchema {
            relations: vec![
                rel("A", &[(1, "to_b")], &[]),
                rel("B", &[(0, "to_a")], &[]),
                rel("C", &[(3, "to_d")], &[]),
                rel("D", &[(2, "to_c")], &[]),
            ],
        };
        assert_eq!(schema.classify(), SchemaClass::LinearlyCyclic);
    }

    #[test]
    fn path_counting_respects_cap() {
        let schema = DatabaseSchema {
            relations: vec![rel("A", &[(0, "next")], &[])],
        };
        assert_eq!(schema.max_paths_up_to(100, 16), 16);
        assert_eq!(schema.max_paths_up_to(3, 1000), 3);
    }

    #[test]
    fn relation_accessors() {
        let schema = DatabaseSchema {
            relations: vec![rel("FLIGHTS", &[(1, "comp_hotel_id")], &["price"])],
        };
        let r = schema.relation(RelationId(0));
        assert_eq!(r.arity(), 3);
        assert_eq!(r.attribute_index("price"), Some(1));
        assert_eq!(r.foreign_keys().count(), 1);
        assert_eq!(r.numeric_attributes().count(), 1);
        assert_eq!(schema.relation_by_name("FLIGHTS"), Some(RelationId(0)));
        assert_eq!(schema.relation_by_name("NOPE"), None);
        assert_eq!(schema.max_arity(), 3);
    }

    #[test]
    fn empty_schema_is_acyclic() {
        let schema = DatabaseSchema::new();
        assert!(schema.is_empty());
        assert_eq!(schema.classify(), SchemaClass::Acyclic);
    }
}
