//! Quantifier-free conditions over artifact variables (Section 2).
//!
//! A condition is a boolean combination of three kinds of atoms:
//!
//! * **equalities** between terms (ID variables, the special constant
//!   `null`, numeric variables, numeric constants);
//! * **relation atoms** `R(x, y₁..yₘ, z₁..zₙ)` binding artifact variables to
//!   a database tuple (`x` and the `zᵢ` are ID variables, the `yᵢ` numeric);
//!   per the paper, a relation atom with any `null` argument is false;
//! * **arithmetic atoms**: linear constraints over numeric variables (the
//!   paper's polynomial inequalities restricted to the linear fragment —
//!   see the `has-arith` crate documentation).
//!
//! Existential quantification is not part of the syntax; as the paper notes,
//! `∃FO` conditions are simulated by adding artifact variables.

use crate::ids::{RelationId, VarId};
use has_arith::{LinearConstraint, Rational};
use std::collections::BTreeSet;

/// A term usable in equality atoms.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// An artifact variable (ID or numeric).
    Var(VarId),
    /// The special constant `null` (only comparable with ID variables).
    Null,
    /// A numeric constant (only comparable with numeric variables).
    Const(Rational),
}

/// An atomic condition.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Atom {
    /// Equality of two terms.
    Eq(Term, Term),
    /// A relation atom `R(args...)`; `args.len()` must equal the arity of
    /// `relation`, and argument sorts must match attribute kinds.
    Relation {
        /// The database relation.
        relation: RelationId,
        /// One term per attribute, in schema attribute order (key first).
        args: Vec<Term>,
    },
    /// A linear arithmetic constraint over numeric variables.
    Arith(LinearConstraint<VarId>),
}

/// A quantifier-free condition: a boolean combination of atoms.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Condition {
    /// The always-true condition.
    True,
    /// The always-false condition.
    False,
    /// An atomic condition.
    Atom(Atom),
    /// Negation.
    Not(Box<Condition>),
    /// Conjunction (empty conjunction is true).
    And(Vec<Condition>),
    /// Disjunction (empty disjunction is false).
    Or(Vec<Condition>),
}

impl Condition {
    /// Convenience: equality of two variables.
    pub fn var_eq(a: VarId, b: VarId) -> Condition {
        Condition::Atom(Atom::Eq(Term::Var(a), Term::Var(b)))
    }

    /// Convenience: `x = null`.
    pub fn is_null(v: VarId) -> Condition {
        Condition::Atom(Atom::Eq(Term::Var(v), Term::Null))
    }

    /// Convenience: `x ≠ null`.
    pub fn not_null(v: VarId) -> Condition {
        Condition::Not(Box::new(Condition::is_null(v)))
    }

    /// Convenience: `x = c` for a numeric constant.
    pub fn eq_const(v: VarId, c: Rational) -> Condition {
        Condition::Atom(Atom::Eq(Term::Var(v), Term::Const(c)))
    }

    /// Convenience: a relation atom.
    pub fn relation(relation: RelationId, args: Vec<Term>) -> Condition {
        Condition::Atom(Atom::Relation { relation, args })
    }

    /// Convenience: an arithmetic atom.
    pub fn arith(c: LinearConstraint<VarId>) -> Condition {
        Condition::Atom(Atom::Arith(c))
    }

    /// Conjunction of two conditions, flattening nested conjunctions and
    /// dropping `True` units.
    pub fn and(self, other: Condition) -> Condition {
        match (self, other) {
            (Condition::True, c) | (c, Condition::True) => c,
            (Condition::False, _) | (_, Condition::False) => Condition::False,
            (Condition::And(mut a), Condition::And(b)) => {
                a.extend(b);
                Condition::And(a)
            }
            (Condition::And(mut a), c) => {
                a.push(c);
                Condition::And(a)
            }
            (c, Condition::And(mut b)) => {
                b.insert(0, c);
                Condition::And(b)
            }
            (a, b) => Condition::And(vec![a, b]),
        }
    }

    /// Disjunction of two conditions, flattening nested disjunctions and
    /// dropping `False` units.
    pub fn or(self, other: Condition) -> Condition {
        match (self, other) {
            (Condition::False, c) | (c, Condition::False) => c,
            (Condition::True, _) | (_, Condition::True) => Condition::True,
            (Condition::Or(mut a), Condition::Or(b)) => {
                a.extend(b);
                Condition::Or(a)
            }
            (Condition::Or(mut a), c) => {
                a.push(c);
                Condition::Or(a)
            }
            (c, Condition::Or(mut b)) => {
                b.insert(0, c);
                Condition::Or(b)
            }
            (a, b) => Condition::Or(vec![a, b]),
        }
    }

    /// Negation.
    pub fn negate(self) -> Condition {
        match self {
            Condition::True => Condition::False,
            Condition::False => Condition::True,
            Condition::Not(c) => *c,
            c => Condition::Not(Box::new(c)),
        }
    }

    /// Logical implication `self → other`.
    pub fn implies(self, other: Condition) -> Condition {
        self.negate().or(other)
    }

    /// Conjunction of an iterator of conditions.
    pub fn all<I: IntoIterator<Item = Condition>>(conds: I) -> Condition {
        conds
            .into_iter()
            .fold(Condition::True, |acc, c| acc.and(c))
    }

    /// Disjunction of an iterator of conditions.
    pub fn any<I: IntoIterator<Item = Condition>>(conds: I) -> Condition {
        conds
            .into_iter()
            .fold(Condition::False, |acc, c| acc.or(c))
    }

    /// The set of variables mentioned by the condition.
    pub fn variables(&self) -> BTreeSet<VarId> {
        let mut out = BTreeSet::new();
        self.collect_variables(&mut out);
        out
    }

    fn collect_variables(&self, out: &mut BTreeSet<VarId>) {
        match self {
            Condition::True | Condition::False => {}
            Condition::Atom(a) => match a {
                Atom::Eq(s, t) => {
                    for term in [s, t] {
                        if let Term::Var(v) = term {
                            out.insert(*v);
                        }
                    }
                }
                Atom::Relation { args, .. } => {
                    for term in args {
                        if let Term::Var(v) = term {
                            out.insert(*v);
                        }
                    }
                }
                Atom::Arith(c) => {
                    out.extend(c.variables().copied());
                }
            },
            Condition::Not(c) => c.collect_variables(out),
            Condition::And(cs) | Condition::Or(cs) => {
                for c in cs {
                    c.collect_variables(out);
                }
            }
        }
    }

    /// The set of relations mentioned by the condition.
    pub fn relations(&self) -> BTreeSet<RelationId> {
        let mut out = BTreeSet::new();
        self.collect_relations(&mut out);
        out
    }

    fn collect_relations(&self, out: &mut BTreeSet<RelationId>) {
        match self {
            Condition::True | Condition::False => {}
            Condition::Atom(Atom::Relation { relation, .. }) => {
                out.insert(*relation);
            }
            Condition::Atom(_) => {}
            Condition::Not(c) => c.collect_relations(out),
            Condition::And(cs) | Condition::Or(cs) => {
                for c in cs {
                    c.collect_relations(out);
                }
            }
        }
    }

    /// The arithmetic atoms (linear constraints) appearing in the condition.
    pub fn arithmetic_atoms(&self) -> Vec<LinearConstraint<VarId>> {
        let mut out = Vec::new();
        self.collect_arith(&mut out);
        out
    }

    fn collect_arith(&self, out: &mut Vec<LinearConstraint<VarId>>) {
        match self {
            Condition::True | Condition::False => {}
            Condition::Atom(Atom::Arith(c)) => out.push(c.clone()),
            Condition::Atom(_) => {}
            Condition::Not(c) => c.collect_arith(out),
            Condition::And(cs) | Condition::Or(cs) => {
                for c in cs {
                    c.collect_arith(out);
                }
            }
        }
    }

    /// Evaluates the condition given truth values for its atoms.
    ///
    /// `eval_atom` returns the truth of an atom; the boolean structure is
    /// evaluated on top. This single entry point is shared by the concrete
    /// evaluator (`has-data`), the symbolic evaluator (`has-symbolic`) and
    /// the simulator, which supply different atom oracles.
    pub fn eval_with<F>(&self, eval_atom: &mut F) -> bool
    where
        F: FnMut(&Atom) -> bool,
    {
        match self {
            Condition::True => true,
            Condition::False => false,
            Condition::Atom(a) => eval_atom(a),
            Condition::Not(c) => !c.eval_with(eval_atom),
            Condition::And(cs) => cs.iter().all(|c| c.eval_with(eval_atom)),
            Condition::Or(cs) => cs.iter().any(|c| c.eval_with(eval_atom)),
        }
    }

    /// Rewrites every variable through the given mapping (used when inlining
    /// conditions across task boundaries and when renaming in the verifier).
    pub fn rename_vars<F>(&self, f: &F) -> Condition
    where
        F: Fn(VarId) -> VarId,
    {
        let rename_term = |t: &Term| match t {
            Term::Var(v) => Term::Var(f(*v)),
            other => *other,
        };
        match self {
            Condition::True => Condition::True,
            Condition::False => Condition::False,
            Condition::Atom(a) => Condition::Atom(match a {
                Atom::Eq(s, t) => Atom::Eq(rename_term(s), rename_term(t)),
                Atom::Relation { relation, args } => Atom::Relation {
                    relation: *relation,
                    args: args.iter().map(rename_term).collect(),
                },
                Atom::Arith(c) => Atom::Arith(c.rename(|v| f(*v))),
            }),
            Condition::Not(c) => Condition::Not(Box::new(c.rename_vars(f))),
            Condition::And(cs) => Condition::And(cs.iter().map(|c| c.rename_vars(f)).collect()),
            Condition::Or(cs) => Condition::Or(cs.iter().map(|c| c.rename_vars(f)).collect()),
        }
    }

    /// Collects all atoms of the condition.
    pub fn atoms(&self) -> Vec<Atom> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms(&self, out: &mut Vec<Atom>) {
        match self {
            Condition::True | Condition::False => {}
            Condition::Atom(a) => out.push(a.clone()),
            Condition::Not(c) => c.collect_atoms(out),
            Condition::And(cs) | Condition::Or(cs) => {
                for c in cs {
                    c.collect_atoms(out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use has_arith::LinExpr;

    fn v(i: usize) -> VarId {
        VarId(i)
    }

    #[test]
    fn and_or_flatten_and_absorb_units() {
        let a = Condition::var_eq(v(0), v(1));
        let b = Condition::is_null(v(2));
        assert_eq!(Condition::True.and(a.clone()), a);
        assert_eq!(Condition::False.and(a.clone()), Condition::False);
        assert_eq!(Condition::False.or(b.clone()), b);
        assert_eq!(Condition::True.or(b.clone()), Condition::True);
        let nested = a.clone().and(b.clone()).and(Condition::var_eq(v(3), v(4)));
        match nested {
            Condition::And(cs) => assert_eq!(cs.len(), 3),
            other => panic!("expected flattened And, got {other:?}"),
        }
    }

    #[test]
    fn double_negation_cancels() {
        let a = Condition::is_null(v(0));
        assert_eq!(a.clone().negate().negate(), a);
        assert_eq!(Condition::True.negate(), Condition::False);
    }

    #[test]
    fn variable_collection_covers_all_atom_kinds() {
        let cond = Condition::var_eq(v(0), v(1))
            .and(Condition::relation(
                RelationId(0),
                vec![Term::Var(v(2)), Term::Const(Rational::ONE), Term::Var(v(3))],
            ))
            .and(Condition::arith(LinearConstraint::le(
                LinExpr::var(v(4)),
                LinExpr::constant(Rational::from_int(7)),
            )));
        let vars = cond.variables();
        assert_eq!(vars.len(), 5);
        assert!(vars.contains(&v(4)));
        assert_eq!(cond.relations().len(), 1);
        assert_eq!(cond.arithmetic_atoms().len(), 1);
        assert_eq!(cond.atoms().len(), 3);
    }

    #[test]
    fn eval_with_respects_boolean_structure() {
        let a = Condition::is_null(v(0));
        let b = Condition::is_null(v(1));
        let cond = a.clone().and(b.clone().negate()).or(Condition::False);
        // atom truth: v0 is null -> true, v1 is null -> false
        let result = cond.eval_with(&mut |atom: &Atom| match atom {
            Atom::Eq(Term::Var(VarId(0)), Term::Null) => true,
            Atom::Eq(Term::Var(VarId(1)), Term::Null) => false,
            _ => unreachable!(),
        });
        assert!(result);
    }

    #[test]
    fn implication_and_bulk_combinators() {
        let p = Condition::is_null(v(0));
        let q = Condition::is_null(v(1));
        let imp = p.clone().implies(q.clone());
        // p false makes the implication true regardless of q.
        assert!(imp.eval_with(&mut |_| false));
        assert_eq!(Condition::all(std::iter::empty()), Condition::True);
        assert_eq!(Condition::any(std::iter::empty()), Condition::False);
    }

    #[test]
    fn rename_vars_applies_to_every_atom() {
        let cond = Condition::var_eq(v(0), v(1)).and(Condition::arith(LinearConstraint::gt(
            LinExpr::var(v(0)),
            LinExpr::constant(Rational::ZERO),
        )));
        let renamed = cond.rename_vars(&|VarId(i)| VarId(i + 10));
        let vars = renamed.variables();
        assert!(vars.contains(&v(10)));
        assert!(vars.contains(&v(11)));
        assert!(!vars.contains(&v(0)));
    }
}
