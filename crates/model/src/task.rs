//! Task schemas, artifact variables and services (Definitions 2–6).

use crate::condition::Condition;
use crate::ids::{TaskId, VarId};

/// The sort of an artifact variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VarSort {
    /// An ID variable: its domain is `{null} ∪ DOM_id`.
    Id,
    /// A numeric variable: its domain is ℝ (ℚ in this implementation).
    Numeric,
}

/// An artifact variable. Variables are owned by exactly one task.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Variable {
    /// Human-readable name (unique within its task).
    pub name: String,
    /// Sort of the variable.
    pub sort: VarSort,
    /// Owning task.
    pub task: TaskId,
}

/// The artifact relation `S^T` of a task, with its fixed insertion/retrieval
/// tuple `s̄^T` (Definition 2, restriction 7 of Section 6).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArtifactRelation {
    /// Name of the artifact relation.
    pub name: String,
    /// The tuple of distinct ID variables `s̄^T ⊆ x̄^T` whose value is
    /// inserted into / retrieved from the relation.
    pub tuple: Vec<VarId>,
}

/// The set update `δ` of an internal service (Definition 5).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SetUpdate {
    /// No set update.
    #[default]
    None,
    /// `+S^T(s̄^T)`: insert the current value of `s̄^T`.
    Insert,
    /// `-S^T(s̄^T)`: retrieve (remove) some tuple and assign it to `s̄^T`.
    Retrieve,
    /// Both an insertion of the current tuple and a retrieval.
    InsertRetrieve,
}

impl SetUpdate {
    /// Returns `true` if the update inserts the current tuple.
    pub fn inserts(&self) -> bool {
        matches!(self, SetUpdate::Insert | SetUpdate::InsertRetrieve)
    }

    /// Returns `true` if the update retrieves a tuple.
    pub fn retrieves(&self) -> bool {
        matches!(self, SetUpdate::Retrieve | SetUpdate::InsertRetrieve)
    }
}

/// An internal service `σ = ⟨π, ψ, δ⟩` of a task (Definition 5).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InternalService {
    /// Service name (for reporting and for property propositions).
    pub name: String,
    /// Pre-condition `π` over the task's variables.
    pub pre: Condition,
    /// Post-condition `ψ` over the task's variables (constrains the *next*
    /// valuation).
    pub post: Condition,
    /// Artifact-relation update.
    pub delta: SetUpdate,
}

/// The opening service `σ^o_{Tc}` of a child task (Definition 6(i)).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpeningService {
    /// Pre-condition over the *parent's* variables (for the root task this is
    /// `true`; the global pre-condition Π is stored on the system).
    pub pre: Condition,
    /// The input variable mapping `f_in`, as pairs `(child_input_var,
    /// parent_var)`: when the child opens, each child input variable receives
    /// the value of the corresponding parent variable.
    pub input_map: Vec<(VarId, VarId)>,
}

/// The closing service `σ^c_{Tc}` of a child task (Definition 6(ii)).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClosingService {
    /// Pre-condition over the *child's* variables.
    pub pre: Condition,
    /// The output variable mapping `f_out`, as pairs `(parent_var,
    /// child_return_var)`: when the child closes, each listed parent variable
    /// receives the value of the corresponding child variable — subject to
    /// the restriction that only `null` parent ID variables are overwritten
    /// (restriction 2 of Section 6).
    pub output_map: Vec<(VarId, VarId)>,
}

/// A task schema `T = ⟨x̄^T, S^T, s̄^T⟩` plus its services and its position
/// in the hierarchy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskSchema {
    /// Task name.
    pub name: String,
    /// The task's artifact variables `x̄^T` (all sorts), in declaration order.
    pub variables: Vec<VarId>,
    /// The input variables `x̄^T_in ⊆ x̄^T`.
    pub input_vars: Vec<VarId>,
    /// The artifact relation, if the task uses one.
    pub artifact_relation: Option<ArtifactRelation>,
    /// Internal services `Σ_T`.
    pub internal_services: Vec<InternalService>,
    /// Opening service (pre-condition over the parent's variables).
    pub opening: OpeningService,
    /// Closing service (pre-condition over this task's variables).
    pub closing: ClosingService,
    /// Parent task (`None` for the root).
    pub parent: Option<TaskId>,
    /// Children, in declaration order.
    pub children: Vec<TaskId>,
}

impl TaskSchema {
    /// Returns `true` if this is the root task.
    pub fn is_root(&self) -> bool {
        self.parent.is_none()
    }

    /// Returns `true` if this is a leaf task.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// The return variables of this task: the child-side variables of the
    /// output mapping (`x̄^T_ret` in the paper).
    pub fn return_vars(&self) -> Vec<VarId> {
        self.closing.output_map.iter().map(|(_, c)| *c).collect()
    }

    /// The parent-side variables written when this task returns
    /// (`x̄^{parent}_{T↑}` in the paper).
    pub fn written_parent_vars(&self) -> Vec<VarId> {
        self.closing.output_map.iter().map(|(p, _)| *p).collect()
    }

    /// The parent-side variables read when this task opens
    /// (`x̄^{parent}_{T↓}` in the paper).
    pub fn read_parent_vars(&self) -> Vec<VarId> {
        self.opening.input_map.iter().map(|(_, p)| *p).collect()
    }

    /// Returns `true` if the given variable is an input variable.
    pub fn is_input_var(&self, v: VarId) -> bool {
        self.input_vars.contains(&v)
    }

    /// Returns `true` if the task owns the given variable.
    pub fn owns(&self, v: VarId) -> bool {
        self.variables.contains(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal_task() -> TaskSchema {
        TaskSchema {
            name: "T".into(),
            variables: vec![VarId(0), VarId(1)],
            input_vars: vec![VarId(0)],
            artifact_relation: None,
            internal_services: vec![],
            opening: OpeningService {
                pre: Condition::True,
                input_map: vec![(VarId(0), VarId(7))],
            },
            closing: ClosingService {
                pre: Condition::False,
                output_map: vec![(VarId(8), VarId(1))],
            },
            parent: Some(TaskId(0)),
            children: vec![],
        }
    }

    #[test]
    fn set_update_flags() {
        assert!(!SetUpdate::None.inserts());
        assert!(SetUpdate::Insert.inserts());
        assert!(!SetUpdate::Insert.retrieves());
        assert!(SetUpdate::Retrieve.retrieves());
        assert!(SetUpdate::InsertRetrieve.inserts() && SetUpdate::InsertRetrieve.retrieves());
    }

    #[test]
    fn task_variable_roles() {
        let t = minimal_task();
        assert!(!t.is_root());
        assert!(t.is_leaf());
        assert!(t.owns(VarId(0)));
        assert!(!t.owns(VarId(9)));
        assert!(t.is_input_var(VarId(0)));
        assert!(!t.is_input_var(VarId(1)));
        assert_eq!(t.return_vars(), vec![VarId(1)]);
        assert_eq!(t.written_parent_vars(), vec![VarId(8)]);
        assert_eq!(t.read_parent_vars(), vec![VarId(7)]);
    }
}
