//! Typed index types used throughout the model.
//!
//! All model entities live in flat vectors owned by [`crate::ArtifactSchema`]
//! (or [`crate::DatabaseSchema`] for relations); the newtypes below are the
//! corresponding indices. Using distinct types keeps the verifier honest
//! about which numbering a `usize` belongs to.

use std::fmt;

/// Index of a relation within a [`crate::DatabaseSchema`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelationId(pub usize);

/// Index of a task within an [`crate::ArtifactSchema`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub usize);

/// Index of an artifact variable within an [`crate::ArtifactSchema`].
///
/// Variables are global to the schema; each belongs to exactly one task.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub usize);

/// A reference to a service, in the sense of the paper's `Σ^obs_T`:
/// the services *observable* in runs of a task `T` are its internal services,
/// its own opening/closing services, and the opening/closing services of its
/// children.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ServiceRef {
    /// The `idx`-th internal service of the given task.
    Internal(TaskId, usize),
    /// The opening service `σ^o_T` of the given task.
    Opening(TaskId),
    /// The closing service `σ^c_T` of the given task.
    Closing(TaskId),
}

impl ServiceRef {
    /// The task the service belongs to (for opening/closing services of a
    /// child observed by the parent, this is the *child*).
    pub fn task(&self) -> TaskId {
        match self {
            ServiceRef::Internal(t, _) | ServiceRef::Opening(t) | ServiceRef::Closing(t) => *t,
        }
    }

    /// Returns `true` if this is an internal service.
    pub fn is_internal(&self) -> bool {
        matches!(self, ServiceRef::Internal(..))
    }

    /// Returns `true` if this is an opening service.
    pub fn is_opening(&self) -> bool {
        matches!(self, ServiceRef::Opening(_))
    }

    /// Returns `true` if this is a closing service.
    pub fn is_closing(&self) -> bool {
        matches!(self, ServiceRef::Closing(_))
    }
}

impl fmt::Debug for RelationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

impl fmt::Debug for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Debug for ServiceRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceRef::Internal(t, i) => write!(f, "σ[{:?}.{}]", t, i),
            ServiceRef::Opening(t) => write!(f, "σo[{:?}]", t),
            ServiceRef::Closing(t) => write!(f, "σc[{:?}]", t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_ref_accessors() {
        let t = TaskId(3);
        assert!(ServiceRef::Internal(t, 0).is_internal());
        assert!(ServiceRef::Opening(t).is_opening());
        assert!(ServiceRef::Closing(t).is_closing());
        assert_eq!(ServiceRef::Closing(t).task(), t);
        assert!(!ServiceRef::Opening(t).is_internal());
    }

    #[test]
    fn debug_formats_are_compact() {
        assert_eq!(format!("{:?}", RelationId(2)), "R2");
        assert_eq!(format!("{:?}", TaskId(1)), "T1");
        assert_eq!(format!("{:?}", VarId(7)), "x7");
        assert_eq!(format!("{:?}", ServiceRef::Opening(TaskId(0))), "σo[T0]");
    }
}
