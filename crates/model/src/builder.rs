//! Ergonomic construction of artifact systems.
//!
//! [`SystemBuilder`] accumulates relations, tasks, variables and services in
//! any convenient order, resolves foreign-key references by relation name
//! (forward references allowed), and finally [`SystemBuilder::build`]s an
//! [`ArtifactSystem`], running the full structural validation of
//! [`crate::validate()`].
//!
//! ```
//! use has_model::{Condition, SystemBuilder, SetUpdate};
//!
//! let mut b = SystemBuilder::new("demo");
//! b.relation("ITEMS", &["price"], &[]);
//! let root = b.root_task("Main");
//! let item = b.id_var(root, "item");
//! b.input_vars(root, &[item]);
//! b.internal_service(root, "pick", Condition::True, Condition::not_null(item), SetUpdate::None);
//! let system = b.build().expect("well-formed system");
//! assert_eq!(system.task(system.root()).name, "Main");
//! ```

use crate::condition::Condition;
use crate::ids::{RelationId, TaskId, VarId};
use crate::schema::{AttrKind, Attribute, DatabaseSchema, Relation};
use crate::system::{ArtifactSchema, ArtifactSystem};
use crate::task::{
    ArtifactRelation, ClosingService, InternalService, OpeningService, SetUpdate, TaskSchema,
    VarSort, Variable,
};
use crate::validate::{validate, ValidationError};

/// Builder for [`ArtifactSystem`] values.
#[derive(Debug)]
pub struct SystemBuilder {
    #[allow(dead_code)]
    name: String,
    relations: Vec<Relation>,
    pending_fks: Vec<(usize, String, String)>, // (relation idx, attr name, target relation name)
    variables: Vec<Variable>,
    tasks: Vec<TaskSchema>,
    root: Option<TaskId>,
    precondition: Condition,
}

impl SystemBuilder {
    /// Creates a new builder. The name is informational only.
    pub fn new(name: &str) -> Self {
        SystemBuilder {
            name: name.to_string(),
            relations: Vec::new(),
            pending_fks: Vec::new(),
            variables: Vec::new(),
            tasks: Vec::new(),
            root: None,
            precondition: Condition::True,
        }
    }

    /// Declares a database relation with the given numeric attributes and
    /// foreign keys. Foreign keys are given as `(attribute_name,
    /// target_relation_name)`; the target may be declared later.
    pub fn relation(
        &mut self,
        name: &str,
        numeric_attrs: &[&str],
        foreign_keys: &[(&str, &str)],
    ) -> RelationId {
        let idx = self.relations.len();
        let mut attributes = vec![Attribute {
            name: "id".to_string(),
            kind: AttrKind::Key,
        }];
        for a in numeric_attrs {
            attributes.push(Attribute {
                name: (*a).to_string(),
                kind: AttrKind::Numeric,
            });
        }
        for (attr, target) in foreign_keys {
            attributes.push(Attribute {
                name: (*attr).to_string(),
                // Placeholder; patched in `build` once all relations exist.
                kind: AttrKind::ForeignKey(RelationId(usize::MAX)),
            });
            self.pending_fks
                .push((idx, (*attr).to_string(), (*target).to_string()));
        }
        self.relations.push(Relation {
            name: name.to_string(),
            attributes,
        });
        RelationId(idx)
    }

    /// Looks up a previously declared relation by name.
    pub fn relation_id(&self, name: &str) -> Option<RelationId> {
        self.relations
            .iter()
            .position(|r| r.name == name)
            .map(RelationId)
    }

    /// Declares the root task. May only be called once.
    pub fn root_task(&mut self, name: &str) -> TaskId {
        assert!(self.root.is_none(), "root task already declared");
        let id = self.new_task(name, None);
        self.root = Some(id);
        id
    }

    /// Declares a child task of `parent`.
    pub fn child_task(&mut self, parent: TaskId, name: &str) -> TaskId {
        let id = self.new_task(name, Some(parent));
        self.tasks[parent.0].children.push(id);
        id
    }

    fn new_task(&mut self, name: &str, parent: Option<TaskId>) -> TaskId {
        let id = TaskId(self.tasks.len());
        self.tasks.push(TaskSchema {
            name: name.to_string(),
            variables: Vec::new(),
            input_vars: Vec::new(),
            artifact_relation: None,
            internal_services: Vec::new(),
            opening: OpeningService {
                pre: Condition::True,
                input_map: Vec::new(),
            },
            closing: ClosingService {
                // The root's closing service never fires (pre-condition
                // false); children default to closable at any time.
                pre: if parent.is_none() {
                    Condition::False
                } else {
                    Condition::True
                },
                output_map: Vec::new(),
            },
            parent,
            children: Vec::new(),
        });
        id
    }

    /// Declares an ID variable owned by `task`.
    pub fn id_var(&mut self, task: TaskId, name: &str) -> VarId {
        self.new_var(task, name, VarSort::Id)
    }

    /// Declares a numeric variable owned by `task`.
    pub fn num_var(&mut self, task: TaskId, name: &str) -> VarId {
        self.new_var(task, name, VarSort::Numeric)
    }

    fn new_var(&mut self, task: TaskId, name: &str, sort: VarSort) -> VarId {
        let id = VarId(self.variables.len());
        self.variables.push(Variable {
            name: name.to_string(),
            sort,
            task,
        });
        self.tasks[task.0].variables.push(id);
        id
    }

    /// Declares the input variables of a task (appending to any already
    /// declared).
    pub fn input_vars(&mut self, task: TaskId, vars: &[VarId]) {
        self.tasks[task.0].input_vars.extend_from_slice(vars);
    }

    /// Declares the artifact relation of a task with its fixed tuple of ID
    /// variables `s̄^T`.
    pub fn artifact_relation(&mut self, task: TaskId, name: &str, tuple: &[VarId]) {
        self.tasks[task.0].artifact_relation = Some(ArtifactRelation {
            name: name.to_string(),
            tuple: tuple.to_vec(),
        });
    }

    /// Adds an internal service to a task.
    pub fn internal_service(
        &mut self,
        task: TaskId,
        name: &str,
        pre: Condition,
        post: Condition,
        delta: SetUpdate,
    ) {
        self.tasks[task.0].internal_services.push(InternalService {
            name: name.to_string(),
            pre,
            post,
            delta,
        });
    }

    /// Sets the opening pre-condition of a (non-root) task; the condition is
    /// over the *parent's* variables.
    pub fn open_when(&mut self, task: TaskId, pre: Condition) {
        self.tasks[task.0].opening.pre = pre;
    }

    /// Adds an input mapping entry: on opening, `child_var := parent_var`.
    pub fn map_input(&mut self, task: TaskId, child_var: VarId, parent_var: VarId) {
        self.tasks[task.0].opening.input_map.push((child_var, parent_var));
        if !self.tasks[task.0].input_vars.contains(&child_var) {
            self.tasks[task.0].input_vars.push(child_var);
        }
    }

    /// Sets the closing pre-condition of a task; the condition is over the
    /// task's own variables.
    pub fn close_when(&mut self, task: TaskId, pre: Condition) {
        self.tasks[task.0].closing.pre = pre;
    }

    /// Adds an output mapping entry: on closing, `parent_var := child_var`
    /// (subject to the null-overwrite rule for ID variables).
    pub fn map_output(&mut self, task: TaskId, parent_var: VarId, child_var: VarId) {
        self.tasks[task.0].closing.output_map.push((parent_var, child_var));
    }

    /// Sets the global pre-condition `Π` over the root task's input
    /// variables.
    pub fn precondition(&mut self, pre: Condition) {
        self.precondition = pre;
    }

    /// Finalizes the system, resolving foreign keys and validating the
    /// result.
    pub fn build(mut self) -> Result<ArtifactSystem, ValidationError> {
        // Resolve pending foreign keys by name.
        for (rel_idx, attr_name, target_name) in std::mem::take(&mut self.pending_fks) {
            let target = self
                .relations
                .iter()
                .position(|r| r.name == target_name)
                .ok_or_else(|| ValidationError::UnknownRelation(target_name.clone()))?;
            let rel = &mut self.relations[rel_idx];
            let attr = rel
                .attributes
                .iter_mut()
                .find(|a| a.name == attr_name)
                .expect("attribute was just created");
            attr.kind = AttrKind::ForeignKey(RelationId(target));
        }
        let root = self.root.ok_or(ValidationError::NoRootTask)?;
        let schema = ArtifactSchema {
            database: DatabaseSchema {
                relations: self.relations,
            },
            variables: self.variables,
            tasks: self.tasks,
            root,
        };
        let system = ArtifactSystem {
            schema,
            precondition: self.precondition,
        };
        validate(&system)?;
        Ok(system)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_system_builds() {
        let mut b = SystemBuilder::new("t");
        let root = b.root_task("Root");
        let x = b.id_var(root, "x");
        b.input_vars(root, &[x]);
        let sys = b.build().unwrap();
        assert_eq!(sys.task(sys.root()).name, "Root");
        assert_eq!(sys.schema.task_count(), 1);
    }

    #[test]
    fn forward_foreign_key_references_resolve() {
        let mut b = SystemBuilder::new("t");
        b.relation("A", &[], &[("to_b", "B")]);
        b.relation("B", &["v"], &[]);
        let root = b.root_task("Root");
        let _ = b.id_var(root, "x");
        let sys = b.build().unwrap();
        let a = sys.schema.database.relation_by_name("A").unwrap();
        let b_id = sys.schema.database.relation_by_name("B").unwrap();
        let fk: Vec<_> = sys.schema.database.relation(a).foreign_keys().collect();
        assert_eq!(fk, vec![(1, b_id)]);
    }

    #[test]
    fn unknown_foreign_key_target_is_an_error() {
        let mut b = SystemBuilder::new("t");
        b.relation("A", &[], &[("to_b", "MISSING")]);
        let root = b.root_task("Root");
        let _ = b.id_var(root, "x");
        assert!(matches!(
            b.build(),
            Err(ValidationError::UnknownRelation(_))
        ));
    }

    #[test]
    fn missing_root_is_an_error() {
        let b = SystemBuilder::new("t");
        assert!(matches!(b.build(), Err(ValidationError::NoRootTask)));
    }

    #[test]
    fn map_input_registers_input_variable() {
        let mut b = SystemBuilder::new("t");
        let root = b.root_task("Root");
        let x = b.id_var(root, "x");
        let child = b.child_task(root, "Child");
        let cx = b.id_var(child, "cx");
        b.map_input(child, cx, x);
        let sys = b.build().unwrap();
        let child_id = sys.schema.task_by_name("Child").unwrap();
        assert!(sys.task(child_id).is_input_var(cx));
    }
}
