//! The Hierarchical Artifact System (HAS) model of Deutsch, Li and Vianu
//! (PODS 2016), Section 2.
//!
//! A HAS `Γ = ⟨A, Σ, Π⟩` consists of
//!
//! * an **artifact schema** `A = ⟨H, DB⟩`: a database schema `DB` whose
//!   relations have a key attribute, foreign-key attributes and numeric
//!   attributes, together with a rooted tree `H` of **task schemas**, each
//!   owning a tuple of artifact variables and one updatable artifact
//!   relation;
//! * a set of **services** `Σ`: per-task internal services (pre/post
//!   conditions plus insertions/retrievals on the artifact relation) and the
//!   opening/closing services that pass input and return variables between a
//!   task and its children;
//! * a global **pre-condition** `Π` on the root task's input variables.
//!
//! This crate defines the abstract syntax of all of the above, an ergonomic
//! [`builder::SystemBuilder`], structural validation ([`validate()`]) of the
//! well-formedness rules and of the syntactic decidability restrictions of
//! Section 6, and schema analysis (foreign-key graph classification into
//! acyclic / linearly-cyclic / cyclic, the driver of the complexity results
//! in Tables 1 and 2).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod builder;
pub mod condition;
pub mod ids;
pub mod schema;
pub mod system;
pub mod task;
pub mod validate;

pub use builder::SystemBuilder;
pub use condition::{Atom, Condition, Term};
pub use ids::{RelationId, ServiceRef, TaskId, VarId};
pub use schema::{AttrKind, Attribute, DatabaseSchema, Relation, SchemaClass};
pub use system::{ArtifactSchema, ArtifactSystem};
pub use task::{
    ArtifactRelation, ClosingService, InternalService, OpeningService, SetUpdate, TaskSchema,
    VarSort, Variable,
};
pub use validate::{validate, ValidationError};
