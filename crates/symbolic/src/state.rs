//! Symbolic states: equality types with congruence closure.
//!
//! A [`SymState`] assigns every expression of a [`TaskContext`] universe to
//! an equivalence class (or marks it dead), and records for every ID variable
//! the relation it is bound to (or `null`). It upholds the invariants of the
//! paper's T-isomorphism types (Definition 15):
//!
//! * expressions in the same class have compatible sorts;
//! * an unbound ID variable is in the class of `null`;
//! * distinct numeric constants are never identified;
//! * the key dependencies are respected: equal ID-sorted expressions have
//!   equal attribute navigations (congruence closure).

use crate::context::TaskContext;
use crate::expr::{Expr, Sort};
use has_model::{ArtifactSchema, Atom, Condition, RelationId, Term, VarId, VarSort};
use has_arith::LinearConstraint;
use std::collections::BTreeSet;

/// Class id marking a dead expression (navigation whose anchor variable is
/// not bound to the navigation's relation).
const DEAD: u32 = u32::MAX;

/// A canonical projection of a symbolic state onto a subset of expressions:
/// the sequence of class ids renumbered in first-occurrence order (dead
/// expressions keep the `DEAD` marker). Two states have the same projection
/// key iff their restrictions to those expressions are isomorphic.
pub type ProjectionKey = Vec<u32>;

/// A symbolic state (restricted T-isomorphism type) over a task's universe.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymState {
    /// Class id per universe expression (`DEAD` for dead navigations).
    class: Vec<u32>,
    /// Binding per ID variable, parallel to the context's sorted
    /// [`TaskContext::id_vars`] sequence: `None` = null.
    ///
    /// The flat vector replaces an ordered map keyed by [`VarId`]. All
    /// states of one context share the same key sequence, so the derived
    /// `Eq`/`Ord` coincide with the map's entry-wise comparison — clones,
    /// comparisons, and hashing of states are plain `Vec` sweeps, which is
    /// what the successor enumeration's dedup loops spend their time on.
    binding: Vec<Option<RelationId>>,
}

impl SymState {
    /// The blank state of a task: every ID variable is `null`, every numeric
    /// variable equals `0`, all navigations are dead. This is the state of a
    /// freshly opened task before its input variables are written
    /// (Definition 9's initialization).
    pub fn blank(ctx: &TaskContext, schema: &ArtifactSchema) -> Self {
        let mut class = vec![DEAD; ctx.len()];
        // Class 0: null and all id variables. Class 1: zero, constants get
        // their own classes, numeric variables join zero.
        let mut next = 2u32;
        for (i, e) in ctx.exprs.iter().enumerate() {
            match e {
                Expr::Null => class[i] = 0,
                Expr::Zero => class[i] = 1,
                Expr::Const(_) => {
                    class[i] = next;
                    next += 1;
                }
                Expr::Var(v) => {
                    class[i] = match schema.variable(*v).sort {
                        VarSort::Id => 0,
                        VarSort::Numeric => 1,
                    }
                }
                Expr::Nav { .. } => class[i] = DEAD,
            }
        }
        let binding = vec![None; ctx.id_vars().len()];
        let mut s = SymState { class, binding };
        s.normalize();
        s
    }

    /// The class of an expression (`DEAD` for dead navigations).
    pub fn class_of(&self, idx: usize) -> u32 {
        self.class[idx]
    }

    /// Returns `true` if the expression is live.
    pub fn is_live(&self, idx: usize) -> bool {
        self.class[idx] != DEAD
    }

    /// Returns `true` if the two expressions are live and equal.
    pub fn eq(&self, a: usize, b: usize) -> bool {
        self.class[a] != DEAD && self.class[a] == self.class[b]
    }

    /// The binding of an ID variable (`None` = null, or `v` is not an ID
    /// variable of the context).
    pub fn binding_of(&self, ctx: &TaskContext, v: VarId) -> Option<RelationId> {
        ctx.id_var_pos(v).and_then(|p| self.binding[p])
    }

    /// Returns `true` if the ID variable is null in this state.
    pub fn is_null(&self, ctx: &TaskContext, v: VarId) -> bool {
        self.class[ctx.var_idx(v)] == self.class[ctx.null_idx]
    }

    /// The dynamic sort of an expression: for ID variables the binding
    /// refines the static sort.
    fn dyn_sort(&self, ctx: &TaskContext, idx: usize) -> Sort {
        match &ctx.exprs[idx] {
            Expr::Var(v) => match ctx.id_var_pos(*v).map(|p| self.binding[p]) {
                Some(Some(rel)) => Sort::Id(rel),
                Some(None) => Sort::Null,
                None => ctx.sorts[idx],
            },
            _ => ctx.sorts[idx],
        }
    }

    /// Renumbers classes canonically (first-occurrence order over the
    /// expression universe), so structural equality of states coincides with
    /// isomorphism of the underlying equality types.
    pub fn normalize(&mut self) {
        // Class ids stay small (they grow by at most a handful per mutation
        // between normalizations), so a direct-indexed renumber table beats
        // an ordered map — `u32::MAX` marks ids not yet encountered.
        let mut max = 0u32;
        let mut any = false;
        for &c in &self.class {
            if c != DEAD {
                any = true;
                max = max.max(c);
            }
        }
        if !any {
            return;
        }
        let mut map = vec![u32::MAX; max as usize + 1];
        let mut next = 0u32;
        for c in self.class.iter_mut() {
            if *c == DEAD {
                continue;
            }
            let m = &mut map[*c as usize];
            if *m == u32::MAX {
                *m = next;
                next += 1;
            }
            *c = *m;
        }
    }

    /// Binds an ID variable to a relation, bringing its navigation
    /// expressions to life in fresh classes (one per navigation), and moving
    /// the variable itself out of the `null` class into a fresh class.
    ///
    /// Any previous binding is discarded. Congruence with existing equal
    /// variables is not re-established here (callers bind variables before
    /// asserting equalities).
    pub fn bind(&mut self, ctx: &TaskContext, v: VarId, rel: Option<RelationId>) {
        if let Some(p) = ctx.id_var_pos(v) {
            self.binding[p] = rel;
        }
        let var_idx = ctx.var_idx(v);
        let mut next = self.max_class().wrapping_add(1);
        match rel {
            None => {
                self.class[var_idx] = self.class[ctx.null_idx];
                for (nav_idx, _) in ctx.navs_of(v) {
                    self.class[nav_idx] = DEAD;
                }
            }
            Some(r) => {
                self.class[var_idx] = next;
                next += 1;
                for (nav_idx, nav_rel) in ctx.navs_of(v) {
                    if nav_rel == r {
                        self.class[nav_idx] = next;
                        next += 1;
                    } else {
                        self.class[nav_idx] = DEAD;
                    }
                }
            }
        }
    }

    /// Assigns a numeric variable to a fresh class of its own.
    pub fn fresh_numeric(&mut self, ctx: &TaskContext, v: VarId) {
        let idx = ctx.var_idx(v);
        self.class[idx] = self.max_class().wrapping_add(1);
    }

    fn max_class(&self) -> u32 {
        self.class
            .iter()
            .copied()
            .filter(|c| *c != DEAD)
            .max()
            .unwrap_or(0)
    }

    /// Merges the classes of two expressions, propagating congruence (equal
    /// ID expressions have equal attribute navigations) and refusing merges
    /// that violate sort discipline or identify distinct constants.
    ///
    /// Returns `Err(())` if the merge is inconsistent.
    // `Err(())` carries no diagnosis on purpose: callers only branch on
    // consistency, and the hot path discards the reason.
    #[allow(clippy::result_unit_err)]
    pub fn union(&mut self, ctx: &TaskContext, a: usize, b: usize) -> Result<(), ()> {
        let mut pending = vec![(a, b)];
        while let Some((x, y)) = pending.pop() {
            let (cx, cy) = (self.class[x], self.class[y]);
            if cx == DEAD || cy == DEAD {
                return Err(());
            }
            if cx == cy {
                continue;
            }
            // Sort compatibility.
            let (sx, sy) = (self.dyn_sort(ctx, x), self.dyn_sort(ctx, y));
            let compatible = match (sx, sy) {
                (Sort::Numeric, Sort::Numeric) => true,
                (Sort::Null, Sort::Null) => true,
                (Sort::Id(r1), Sort::Id(r2)) => r1 == r2,
                // A null-sorted expression can only be the constant null or
                // an unbound variable; identifying it with a bound ID
                // expression is inconsistent (the paper forces null-sorted
                // expressions to equal null).
                _ => false,
            };
            if !compatible {
                return Err(());
            }
            // Distinct constants can never be identified; nor can a non-zero
            // constant be identified with zero.
            let mut ex: Option<&Expr> = None;
            let mut ey: Option<&Expr> = None;
            for &i in ctx.const_exprs() {
                if self.class[i] == cx {
                    ex = Some(&ctx.exprs[i]);
                }
                if self.class[i] == cy {
                    ey = Some(&ctx.exprs[i]);
                }
            }
            if let (Some(e1), Some(e2)) = (ex, ey) {
                if e1 != e2 {
                    return Err(());
                }
            }
            // Merge cy into cx.
            for c in self.class.iter_mut() {
                if *c == cy {
                    *c = cx;
                }
            }
            // Congruence: children of expressions now equal must be equal.
            // Collect pairs (child_x, child_y) for representatives of the
            // merged class whose children exist in the universe.
            let members: Vec<usize> = (0..ctx.len())
                .filter(|i| self.class[*i] == cx)
                .collect();
            for i in 0..members.len() {
                for j in i + 1..members.len() {
                    let (mi, mj) = (members[i], members[j]);
                    for attr in 0..ctx.max_attr() {
                        let (ci, cj) = (self.child_idx(ctx, mi, attr), self.child_idx(ctx, mj, attr));
                        if let (Some(ci), Some(cj)) = (ci, cj) {
                            if self.class[ci] != DEAD
                                && self.class[cj] != DEAD
                                && self.class[ci] != self.class[cj]
                            {
                                pending.push((ci, cj));
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// The child expression of `idx` along attribute `attr`, taking the
    /// current binding of variables into account. Resolved through the
    /// context's precomputed child tables — no expression is materialized.
    fn child_idx(&self, ctx: &TaskContext, idx: usize, attr: usize) -> Option<usize> {
        match &ctx.exprs[idx] {
            Expr::Var(v) => {
                let rel = ctx.id_var_pos(*v).and_then(|p| self.binding[p])?;
                ctx.child_of_var(idx, rel, attr)
            }
            Expr::Nav { .. } => ctx.child_of_nav(idx, attr),
            _ => None,
        }
    }

    /// Evaluates a condition on this state.
    ///
    /// Equality and relation atoms are decided by the equality type;
    /// arithmetic atoms are delegated to `arith_oracle` (returning `None`
    /// means "not determined by the abstraction"). The overall result is
    /// three-valued: `Some(bool)` when determined, `None` otherwise.
    pub fn satisfies(
        &self,
        ctx: &TaskContext,
        condition: &Condition,
        arith_oracle: &dyn Fn(&LinearConstraint<VarId>) -> Option<bool>,
    ) -> Option<bool> {
        match condition {
            Condition::True => Some(true),
            Condition::False => Some(false),
            Condition::Not(c) => self.satisfies(ctx, c, arith_oracle).map(|b| !b),
            Condition::And(cs) => {
                let mut unknown = false;
                for c in cs {
                    match self.satisfies(ctx, c, arith_oracle) {
                        Some(false) => return Some(false),
                        Some(true) => {}
                        None => unknown = true,
                    }
                }
                if unknown {
                    None
                } else {
                    Some(true)
                }
            }
            Condition::Or(cs) => {
                let mut unknown = false;
                for c in cs {
                    match self.satisfies(ctx, c, arith_oracle) {
                        Some(true) => return Some(true),
                        Some(false) => {}
                        None => unknown = true,
                    }
                }
                if unknown {
                    None
                } else {
                    Some(false)
                }
            }
            Condition::Atom(atom) => self.satisfies_atom(ctx, atom, arith_oracle),
        }
    }

    fn satisfies_atom(
        &self,
        ctx: &TaskContext,
        atom: &Atom,
        arith_oracle: &dyn Fn(&LinearConstraint<VarId>) -> Option<bool>,
    ) -> Option<bool> {
        match atom {
            Atom::Eq(a, b) => {
                let (i, j) = (ctx.term_idx(a)?, ctx.term_idx(b)?);
                Some(self.eq(i, j))
            }
            Atom::Relation { relation, args } => {
                let Some(Term::Var(x)) = args.first() else {
                    return Some(false);
                };
                // The atom is false if any argument is null (Section 2).
                if self.binding_of(ctx, *x) != Some(*relation) {
                    return Some(false);
                }
                for (attr_idx, term) in args.iter().enumerate().skip(1) {
                    let nav = ctx.index_of(&Expr::Nav {
                        var: *x,
                        rel: *relation,
                        path: vec![attr_idx],
                    })?;
                    let t = ctx.term_idx(term)?;
                    if matches!(term, Term::Null) {
                        return Some(false);
                    }
                    if let Term::Var(v) = term {
                        if ctx.exprs[ctx.var_idx(*v)] == Expr::Var(*v)
                            && self.class[ctx.var_idx(*v)] == self.class[ctx.null_idx]
                        {
                            return Some(false);
                        }
                    }
                    if !self.eq(nav, t) {
                        return Some(false);
                    }
                }
                Some(true)
            }
            Atom::Arith(c) => arith_oracle(c),
        }
    }

    /// Like [`SymState::satisfies`], but atoms mentioning any variable in
    /// `unknown_vars` are treated as undetermined (`None`). Used by the
    /// verifier's successor enumeration to prune partial assignments without
    /// mis-judging atoms over variables that have not been rewritten yet.
    pub fn satisfies_with_unknowns(
        &self,
        ctx: &TaskContext,
        condition: &Condition,
        unknown_vars: &std::collections::BTreeSet<VarId>,
        arith_oracle: &dyn Fn(&LinearConstraint<VarId>) -> Option<bool>,
    ) -> Option<bool> {
        match condition {
            Condition::True => Some(true),
            Condition::False => Some(false),
            Condition::Not(c) => self
                .satisfies_with_unknowns(ctx, c, unknown_vars, arith_oracle)
                .map(|b| !b),
            Condition::And(cs) => {
                let mut unknown = false;
                for c in cs {
                    match self.satisfies_with_unknowns(ctx, c, unknown_vars, arith_oracle) {
                        Some(false) => return Some(false),
                        Some(true) => {}
                        None => unknown = true,
                    }
                }
                if unknown {
                    None
                } else {
                    Some(true)
                }
            }
            Condition::Or(cs) => {
                let mut unknown = false;
                for c in cs {
                    match self.satisfies_with_unknowns(ctx, c, unknown_vars, arith_oracle) {
                        Some(true) => return Some(true),
                        Some(false) => {}
                        None => unknown = true,
                    }
                }
                if unknown {
                    None
                } else {
                    Some(false)
                }
            }
            Condition::Atom(atom) => {
                let touches_unknown = match atom {
                    Atom::Eq(a, b) => [a, b].iter().any(|t| match t {
                        Term::Var(v) => unknown_vars.contains(v),
                        _ => false,
                    }),
                    Atom::Relation { args, .. } => args.iter().any(|t| match t {
                        Term::Var(v) => unknown_vars.contains(v),
                        _ => false,
                    }),
                    Atom::Arith(c) => c.variables().any(|v| unknown_vars.contains(v)),
                };
                if touches_unknown {
                    None
                } else {
                    self.satisfies_atom(ctx, atom, arith_oracle)
                }
            }
        }
    }

    /// Canonical projection key onto an arbitrary list of expressions.
    pub fn projection_key(&self, exprs: &[usize]) -> ProjectionKey {
        let max = exprs
            .iter()
            .map(|&i| self.class[i])
            .filter(|&c| c != DEAD)
            .max();
        let Some(max) = max else {
            return vec![DEAD; exprs.len()];
        };
        let mut map = vec![u32::MAX; max as usize + 1];
        let mut next = 0u32;
        exprs
            .iter()
            .map(|&i| {
                let c = self.class[i];
                if c == DEAD {
                    DEAD
                } else {
                    let m = &mut map[c as usize];
                    if *m == u32::MAX {
                        *m = next;
                        next += 1;
                    }
                    *m
                }
            })
            .collect()
    }

    /// Canonical projection key onto the expressions anchored at the given
    /// variables (the variables themselves, their navigations) plus `null`
    /// and `0`. This is the paper's projection `τ|z̄`; with
    /// `vars = x̄_in ∪ s̄^T` it is the TS-isomorphism type used to index the
    /// artifact-relation counters.
    pub fn project_vars(&self, ctx: &TaskContext, vars: &[VarId]) -> ProjectionKey {
        let exprs = Self::projection_exprs(ctx, vars);
        self.projection_key(&exprs)
    }

    /// The expression indices involved in [`SymState::project_vars`] for the
    /// given variables (stable across states, so keys are comparable).
    pub fn projection_exprs(ctx: &TaskContext, vars: &[VarId]) -> Vec<usize> {
        let mut out: Vec<usize> = vec![ctx.null_idx, ctx.zero_idx];
        for (i, e) in ctx.exprs.iter().enumerate() {
            match e {
                Expr::Var(v) | Expr::Nav { var: v, .. }
                    if vars.contains(v) => {
                        out.push(i);
                    }
                Expr::Const(_) => out.push(i),
                _ => {}
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// Copies the classes and bindings of the expressions anchored at `vars`
    /// from `source` into `self`, leaving everything else untouched and then
    /// re-normalizing. Both states must share the same context. Used to
    /// preserve input variables across internal transitions.
    pub fn adopt_vars(&mut self, ctx: &TaskContext, source: &SymState, vars: &[VarId]) {
        // To keep equalities among the adopted variables exactly as in
        // `source` (and not accidentally identify them with unrelated classes
        // of `self`), shift adopted classes into a fresh range.
        let offset = self.max_class().wrapping_add(1);
        for (i, e) in ctx.exprs.iter().enumerate() {
            let var = match e {
                Expr::Var(v) | Expr::Nav { var: v, .. } => Some(*v),
                _ => None,
            };
            if let Some(v) = var {
                if vars.contains(&v) {
                    let c = source.class[i];
                    self.class[i] = if c == DEAD {
                        DEAD
                    } else if c == source.class[ctx.null_idx] {
                        // Stay identified with null.
                        self.class[ctx.null_idx]
                    } else if c == source.class[ctx.zero_idx] {
                        self.class[ctx.zero_idx]
                    } else if let Some(k) = source.constant_class_expr(ctx, c) {
                        self.class[k]
                    } else {
                        offset + c
                    };
                }
            }
        }
        for v in vars {
            if let Some(p) = ctx.id_var_pos(*v) {
                self.binding[p] = source.binding[p];
            }
        }
        self.normalize();
    }

    /// If class `c` in this state contains a constant expression (`0` or a
    /// named constant), returns that expression's index.
    fn constant_class_expr(&self, ctx: &TaskContext, c: u32) -> Option<usize> {
        ctx.const_exprs().iter().copied().find(|&i| self.class[i] == c)
    }

    /// Number of live classes.
    pub fn class_count(&self) -> usize {
        let mut set = BTreeSet::new();
        for c in &self.class {
            if *c != DEAD {
                set.insert(*c);
            }
        }
        set.len()
    }
}

/// Transfers the equality/binding pattern of `src` (over `src_ctx`) onto
/// `dst` (over `dst_ctx`) along a variable correspondence `var_map`
/// (`(src_var, dst_var)` pairs): destination variables listed in the map are
/// re-bound according to the source, and every pair of destination
/// expressions whose corresponding source expressions are equal in `src` is
/// unioned in `dst`. Corresponding expressions are: mapped variables, their
/// navigations with identical relation and path, `null`, `0`, and identical
/// named constants.
///
/// This is the workhorse of the cross-task steps of the verifier: computing a
/// child's input isomorphism type from the parent's state on opening
/// (Definition 18), and writing a child's output pattern back into the parent
/// on closing.
pub fn transfer_pattern(
    src_ctx: &TaskContext,
    src: &SymState,
    dst_ctx: &TaskContext,
    dst: &mut SymState,
    var_map: &[(VarId, VarId)],
) {
    // Re-bind the destination ID variables first so their navigations are
    // live. Numeric variables have no binding; their classes are set by the
    // equality replication below (callers give them fresh classes first).
    for (sv, dv) in var_map {
        let idx = dst_ctx.var_idx(*dv);
        if dst_ctx.sorts[idx] != Sort::Numeric {
            dst.bind(dst_ctx, *dv, src.binding_of(src_ctx, *sv));
        }
    }
    // Build the correspondence dst expression -> src expression.
    let corresponding = |dst_expr: &Expr| -> Option<Expr> {
        match dst_expr {
            Expr::Null => Some(Expr::Null),
            Expr::Zero => Some(Expr::Zero),
            Expr::Const(c) => Some(Expr::Const(*c)),
            Expr::Var(v) => var_map
                .iter()
                .find(|(_, dv)| dv == v)
                .map(|(sv, _)| Expr::Var(*sv)),
            Expr::Nav { var, rel, path } => var_map
                .iter()
                .find(|(_, dv)| dv == var)
                .map(|(sv, _)| Expr::Nav {
                    var: *sv,
                    rel: *rel,
                    path: path.clone(),
                }),
        }
    };
    let pairs: Vec<(usize, usize)> = dst_ctx
        .exprs
        .iter()
        .enumerate()
        .filter_map(|(i, e)| {
            let src_expr = corresponding(e)?;
            let j = src_ctx.index_of(&src_expr)?;
            Some((i, j))
        })
        .collect();
    for (di, si) in &pairs {
        for (dj, sj) in &pairs {
            let src_equal = SymState::eq(src, *si, *sj);
            let dst_equal = SymState::eq(dst, *di, *dj);
            if di < dj && src_equal && dst.is_live(*di) && dst.is_live(*dj) && !dst_equal {
                let _ = dst.union(dst_ctx, *di, *dj);
            }
        }
    }
    dst.normalize();
}

#[cfg(test)]
mod tests {
    use super::*;
    use has_arith::Rational;
    use has_model::{SetUpdate, SystemBuilder};

    struct Fix {
        system: has_model::ArtifactSystem,
        ctx: TaskContext,
        flight: VarId,
        hotel: VarId,
        price: VarId,
        status: VarId,
        flights: RelationId,
    }

    fn fixture() -> Fix {
        let mut b = SystemBuilder::new("t");
        b.relation("HOTELS", &["unit_price"], &[]);
        b.relation("FLIGHTS", &["price"], &[("comp_hotel", "HOTELS")]);
        let root = b.root_task("Root");
        let flight = b.id_var(root, "flight_id");
        let hotel = b.id_var(root, "hotel_id");
        let price = b.num_var(root, "price");
        let status = b.num_var(root, "status");
        let flights = b.relation_id("FLIGHTS").unwrap();
        let post = Condition::relation(
            flights,
            vec![Term::Var(flight), Term::Var(price), Term::Var(hotel)],
        )
        .and(Condition::eq_const(status, Rational::from_int(1)));
        b.internal_service(root, "choose", Condition::True, post, SetUpdate::None);
        let system = b.build().unwrap();
        let root = system.root();
        let ctx = TaskContext::build(&system, root, &[], 1);
        Fix {
            system,
            ctx,
            flight,
            hotel,
            price,
            status,
            flights,
        }
    }

    fn no_arith(_: &LinearConstraint<VarId>) -> Option<bool> {
        None
    }

    #[test]
    fn blank_state_has_null_ids_and_zero_numerics() {
        let f = fixture();
        let s = SymState::blank(&f.ctx, &f.system.schema);
        assert!(s.is_null(&f.ctx, f.flight));
        assert!(s.is_null(&f.ctx, f.hotel));
        assert!(s.eq(f.ctx.var_idx(f.price), f.ctx.zero_idx));
        assert_eq!(s.binding_of(&f.ctx, f.flight), None);
        assert_eq!(
            s.satisfies(&f.ctx, &Condition::is_null(f.flight), &no_arith),
            Some(true)
        );
        assert_eq!(
            s.satisfies(&f.ctx, &Condition::eq_const(f.price, Rational::ZERO), &no_arith),
            Some(true)
        );
    }

    #[test]
    fn binding_brings_navigations_to_life() {
        let f = fixture();
        let mut s = SymState::blank(&f.ctx, &f.system.schema);
        s.bind(&f.ctx, f.flight, Some(f.flights));
        assert!(!s.is_null(&f.ctx, f.flight));
        assert_eq!(s.binding_of(&f.ctx, f.flight), Some(f.flights));
        let nav_price = f
            .ctx
            .index_of(&Expr::Nav {
                var: f.flight,
                rel: f.flights,
                path: vec![1],
            })
            .unwrap();
        assert!(s.is_live(nav_price));
        // Unbinding kills them again and re-identifies with null.
        s.bind(&f.ctx, f.flight, None);
        assert!(!s.is_live(nav_price));
        assert!(s.is_null(&f.ctx, f.flight));
    }

    #[test]
    fn relation_atom_requires_binding_and_attribute_equalities() {
        let f = fixture();
        let mut s = SymState::blank(&f.ctx, &f.system.schema);
        let atom = Condition::relation(
            f.flights,
            vec![Term::Var(f.flight), Term::Var(f.price), Term::Var(f.hotel)],
        );
        assert_eq!(s.satisfies(&f.ctx, &atom, &no_arith), Some(false));
        // Bind flight and hotel, then align the attribute navigations.
        s.bind(&f.ctx, f.flight, Some(f.flights));
        let hotels = f.system.schema.database.relation_by_name("HOTELS").unwrap();
        s.bind(&f.ctx, f.hotel, Some(hotels));
        let nav_price = f
            .ctx
            .index_of(&Expr::Nav {
                var: f.flight,
                rel: f.flights,
                path: vec![1],
            })
            .unwrap();
        let nav_hotel = f
            .ctx
            .index_of(&Expr::Nav {
                var: f.flight,
                rel: f.flights,
                path: vec![2],
            })
            .unwrap();
        s.union(&f.ctx, nav_price, f.ctx.var_idx(f.price)).unwrap();
        s.union(&f.ctx, nav_hotel, f.ctx.var_idx(f.hotel)).unwrap();
        assert_eq!(s.satisfies(&f.ctx, &atom, &no_arith), Some(true));
    }

    #[test]
    fn unions_reject_sort_violations_and_constant_clashes() {
        let f = fixture();
        let mut s = SymState::blank(&f.ctx, &f.system.schema);
        // numeric with null: reject.
        assert!(s.union(&f.ctx, f.ctx.var_idx(f.price), f.ctx.null_idx).is_err());
        // distinct constants: reject (1 vs 0).
        let one = f.ctx.index_of(&Expr::Const(Rational::from_int(1))).unwrap();
        assert!(s.union(&f.ctx, one, f.ctx.zero_idx).is_err());
        // numeric variable with the constant 1: fine once the variable has
        // been given a fresh value (in the blank state it is still 0).
        s.fresh_numeric(&f.ctx, f.status);
        assert!(s.union(&f.ctx, f.ctx.var_idx(f.status), one).is_ok());
        assert_eq!(
            s.satisfies(
                &f.ctx,
                &Condition::eq_const(f.status, Rational::from_int(1)),
                &no_arith
            ),
            Some(true)
        );
    }

    #[test]
    fn congruence_propagates_along_navigations() {
        let f = fixture();
        let deep_ctx = TaskContext::build(&f.system, f.system.root(), &[], 2);
        let mut s = SymState::blank(&deep_ctx, &f.system.schema);
        // Bind hotel and flight; make flight's comp_hotel equal to hotel.
        let hotels = f.system.schema.database.relation_by_name("HOTELS").unwrap();
        s.bind(&deep_ctx, f.flight, Some(f.flights));
        s.bind(&deep_ctx, f.hotel, Some(hotels));
        let nav_comp = deep_ctx
            .index_of(&Expr::Nav {
                var: f.flight,
                rel: f.flights,
                path: vec![2],
            })
            .unwrap();
        s.union(&deep_ctx, nav_comp, deep_ctx.var_idx(f.hotel)).unwrap();
        // Congruence: flight@FLIGHTS.comp_hotel.unit_price ~ hotel@HOTELS.unit_price.
        let deep_nav = deep_ctx
            .index_of(&Expr::Nav {
                var: f.flight,
                rel: f.flights,
                path: vec![2, 1],
            })
            .unwrap();
        let hotel_price = deep_ctx
            .index_of(&Expr::Nav {
                var: f.hotel,
                rel: hotels,
                path: vec![1],
            })
            .unwrap();
        assert!(s.eq(deep_nav, hotel_price));
    }

    #[test]
    fn projection_keys_are_canonical() {
        let f = fixture();
        let mut a = SymState::blank(&f.ctx, &f.system.schema);
        let mut b = SymState::blank(&f.ctx, &f.system.schema);
        a.fresh_numeric(&f.ctx, f.price);
        b.fresh_numeric(&f.ctx, f.price);
        a.normalize();
        b.normalize();
        assert_eq!(
            a.project_vars(&f.ctx, &[f.price, f.status]),
            b.project_vars(&f.ctx, &[f.price, f.status])
        );
        // Making price equal to status in `a` changes the projection.
        a.union(&f.ctx, f.ctx.var_idx(f.price), f.ctx.var_idx(f.status))
            .unwrap();
        assert_ne!(
            a.project_vars(&f.ctx, &[f.price, f.status]),
            b.project_vars(&f.ctx, &[f.price, f.status])
        );
    }

    #[test]
    fn adopt_vars_preserves_source_pattern() {
        let f = fixture();
        let mut source = SymState::blank(&f.ctx, &f.system.schema);
        source.bind(&f.ctx, f.flight, Some(f.flights));
        source.fresh_numeric(&f.ctx, f.price);
        source.normalize();
        let mut target = SymState::blank(&f.ctx, &f.system.schema);
        target.adopt_vars(&f.ctx, &source, &[f.flight, f.price]);
        assert_eq!(target.binding_of(&f.ctx, f.flight), Some(f.flights));
        assert!(!target.is_null(&f.ctx, f.flight));
        // price is in its own class, distinct from zero.
        assert!(!target.eq(f.ctx.var_idx(f.price), f.ctx.zero_idx));
        // hotel untouched: still null.
        assert!(target.is_null(&f.ctx, f.hotel));
        assert!(target.class_count() >= 3);
    }
}
