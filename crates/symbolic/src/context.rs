//! Per-task symbolic context: the expression universe and atom basis.
//!
//! The paper's T-isomorphism types range over all navigation expressions up
//! to the depth `h(T)`; a practical verifier only needs the expressions the
//! specification and the property can *observe* — the variables themselves,
//! the constants appearing in conditions, and, for every ID variable `x` and
//! every relation `R` for which some condition contains an atom `R(x, …)`,
//! the navigations `x_R.a` (extended further along foreign keys up to a
//! configurable depth). The [`TaskContext`] computes this universe once per
//! task and provides the index structures the symbolic state operates on.

use crate::expr::{Expr, Sort};
use has_arith::Rational;
use has_model::{
    ArtifactSchema, ArtifactSystem, Atom, AttrKind, Condition, RelationId, TaskId, Term, VarId,
    VarSort,
};
use std::collections::{BTreeMap, BTreeSet};

/// The symbolic context of a task: expression universe, sorts, and the atom
/// basis used to bound successor enumeration.
#[derive(Clone, Debug)]
pub struct TaskContext {
    /// The task this context describes.
    pub task: TaskId,
    /// The expression universe `E⁺_T` (index = expression id).
    pub exprs: Vec<Expr>,
    /// Static sort per expression (for ID variables this is refined
    /// dynamically by the state's binding).
    pub sorts: Vec<Sort>,
    /// Index of [`Expr::Null`].
    pub null_idx: usize,
    /// Index of [`Expr::Zero`].
    pub zero_idx: usize,
    /// The task's ID variables, with the candidate relations each may be
    /// bound to (relations appearing with the variable in key position of a
    /// relation atom).
    pub id_var_bindings: BTreeMap<VarId, Vec<RelationId>>,
    /// For every expression, the expressions related to it by some atom of
    /// the basis (used to bound the classes considered when enumerating a
    /// freshly written variable's value).
    pub related: Vec<BTreeSet<usize>>,
    expr_index: BTreeMap<Expr, usize>,
    /// The ID variables in ascending order — the fixed key sequence of every
    /// state's flat binding vector.
    id_vars: Vec<VarId>,
    /// One past the largest attribute index appearing in any navigation.
    max_attr: usize,
    /// Indices of constant expressions (`0` and named constants), ascending.
    const_idxs: Vec<usize>,
    /// Child table for navigation expressions: `nav_child[i][attr]` is the
    /// index of the expression extending `exprs[i]` by `attr`, if present.
    /// Empty for non-navigation expressions.
    nav_child: Vec<Vec<Option<usize>>>,
    /// Child tables for ID-variable expressions, one `(rel, children)` entry
    /// per candidate binding, sorted by relation. Empty for other
    /// expressions.
    var_child: Vec<Vec<(RelationId, Vec<Option<usize>>)>>,
}

impl TaskContext {
    /// Builds the context of a task from the artifact system and any extra
    /// conditions (property propositions attached to the task, and — for the
    /// root task — the global pre-condition).
    ///
    /// `nav_depth` bounds foreign-key navigation beyond the attributes
    /// directly observable by relation atoms (depth 1 is always included).
    pub fn build(
        system: &ArtifactSystem,
        task: TaskId,
        extra_conditions: &[Condition],
        nav_depth: usize,
    ) -> Self {
        Self::build_with_bindings(system, task, extra_conditions, nav_depth, &BTreeMap::new())
    }

    /// Like [`TaskContext::build`], but seeds additional candidate bindings
    /// for the task's variables. The verifier uses this to propagate bindings
    /// across task boundaries (a variable passed to a child that navigates it
    /// must be navigable in the parent too, otherwise facts established by
    /// the child would be lost when they flow back through the parent).
    pub fn build_with_bindings(
        system: &ArtifactSystem,
        task: TaskId,
        extra_conditions: &[Condition],
        nav_depth: usize,
        seed_bindings: &BTreeMap<VarId, Vec<RelationId>>,
    ) -> Self {
        let schema = &system.schema;
        let t = schema.task(task);

        // Gather all conditions observable from this task's perspective.
        let mut conditions: Vec<&Condition> = Vec::new();
        for s in &t.internal_services {
            conditions.push(&s.pre);
            conditions.push(&s.post);
        }
        conditions.push(&t.closing.pre);
        for &c in &t.children {
            conditions.push(&schema.task(c).opening.pre);
        }
        if task == schema.root {
            conditions.push(&system.precondition);
        }
        for c in extra_conditions {
            conditions.push(c);
        }

        // Candidate bindings: relations appearing with an ID variable of this
        // task in the key position of a relation atom.
        let mut id_var_bindings: BTreeMap<VarId, Vec<RelationId>> = BTreeMap::new();
        for &v in &t.variables {
            if schema.variable(v).sort == VarSort::Id {
                let mut seeded = Vec::new();
                if let Some(extra) = seed_bindings.get(&v) {
                    seeded.extend(extra.iter().copied());
                }
                id_var_bindings.insert(v, seeded);
            }
        }
        let mut constants: BTreeSet<Rational> = BTreeSet::new();
        for cond in &conditions {
            for atom in cond.atoms() {
                match atom {
                    Atom::Relation { relation, args } => {
                        if let Some(Term::Var(x)) = args.first() {
                            if let Some(list) = id_var_bindings.get_mut(x) {
                                if !list.contains(&relation) {
                                    list.push(relation);
                                }
                            }
                        }
                        // A variable in a foreign-key position holds an id of
                        // the referenced relation: record it as a candidate
                        // binding so conditions elsewhere can navigate it.
                        let attrs = &schema.database.relation(relation).attributes;
                        for (i, term) in args.iter().enumerate().skip(1) {
                            if let (Some(AttrKind::ForeignKey(target)), Term::Var(z)) =
                                (attrs.get(i).map(|a| a.kind), term)
                            {
                                if let Some(list) = id_var_bindings.get_mut(z) {
                                    if !list.contains(&target) {
                                        list.push(target);
                                    }
                                }
                            }
                        }
                        for term in &args {
                            if let Term::Const(c) = term {
                                if !c.is_zero() {
                                    constants.insert(*c);
                                }
                            }
                        }
                    }
                    Atom::Eq(a, b) => {
                        for term in [a, b] {
                            if let Term::Const(c) = term {
                                if !c.is_zero() {
                                    constants.insert(c);
                                }
                            }
                        }
                    }
                    Atom::Arith(_) => {}
                }
            }
        }

        // Assemble the universe.
        let mut exprs: Vec<Expr> = vec![Expr::Null, Expr::Zero];
        for c in &constants {
            exprs.push(Expr::Const(*c));
        }
        for &v in &t.variables {
            exprs.push(Expr::Var(v));
        }
        // Navigations: one step per attribute for each candidate binding,
        // extended along foreign keys up to `nav_depth`.
        for (&v, rels) in &id_var_bindings {
            for &rel in rels {
                let mut frontier: Vec<(RelationId, Vec<usize>)> = vec![(rel, Vec::new())];
                for depth in 0..nav_depth.max(1) {
                    let mut next_frontier = Vec::new();
                    for (current, path) in &frontier {
                        for (idx, attr) in
                            schema.database.relation(*current).attributes.iter().enumerate()
                        {
                            if matches!(attr.kind, AttrKind::Key) {
                                continue;
                            }
                            let mut p = path.clone();
                            p.push(idx);
                            exprs.push(Expr::Nav {
                                var: v,
                                rel,
                                path: p.clone(),
                            });
                            if let AttrKind::ForeignKey(target) = attr.kind {
                                if depth + 1 < nav_depth {
                                    next_frontier.push((target, p));
                                }
                            }
                        }
                    }
                    frontier = next_frontier;
                    if frontier.is_empty() {
                        break;
                    }
                }
            }
        }
        exprs.sort();
        exprs.dedup();

        let expr_index: BTreeMap<Expr, usize> =
            exprs.iter().cloned().enumerate().map(|(i, e)| (e, i)).collect();
        let sorts: Vec<Sort> = exprs.iter().map(|e| e.sort(schema)).collect();
        let null_idx = expr_index[&Expr::Null];
        let zero_idx = expr_index[&Expr::Zero];

        // Atom basis → relatedness between expressions.
        let mut related: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); exprs.len()];
        let relate = |a: usize, b: usize, related: &mut Vec<BTreeSet<usize>>| {
            related[a].insert(b);
            related[b].insert(a);
        };
        let term_idx = |term: &Term, expr_index: &BTreeMap<Expr, usize>| -> Option<usize> {
            match term {
                Term::Var(v) => expr_index.get(&Expr::Var(*v)).copied(),
                Term::Null => expr_index.get(&Expr::Null).copied(),
                Term::Const(c) if c.is_zero() => expr_index.get(&Expr::Zero).copied(),
                Term::Const(c) => expr_index.get(&Expr::Const(*c)).copied(),
            }
        };
        for cond in &conditions {
            for atom in cond.atoms() {
                match atom {
                    Atom::Eq(a, b) => {
                        if let (Some(i), Some(j)) = (term_idx(&a, &expr_index), term_idx(&b, &expr_index)) {
                            relate(i, j, &mut related);
                        }
                    }
                    Atom::Relation { relation, args } => {
                        let Some(Term::Var(x)) = args.first() else { continue };
                        for (attr_idx, term) in args.iter().enumerate().skip(1) {
                            let nav = Expr::Nav {
                                var: *x,
                                rel: relation,
                                path: vec![attr_idx],
                            };
                            if let (Some(i), Some(j)) =
                                (expr_index.get(&nav).copied(), term_idx(term, &expr_index))
                            {
                                relate(i, j, &mut related);
                            }
                        }
                    }
                    Atom::Arith(c) => {
                        // Numeric variables compared by arithmetic are
                        // related to each other and to the constants.
                        let vars: Vec<usize> = c
                            .variables()
                            .filter_map(|v| expr_index.get(&Expr::Var(*v)).copied())
                            .collect();
                        for i in 0..vars.len() {
                            for j in i + 1..vars.len() {
                                relate(vars[i], vars[j], &mut related);
                            }
                            relate(vars[i], zero_idx, &mut related);
                        }
                    }
                }
            }
        }

        // Precomputed lookup tables for the hot paths of the congruence
        // closure: attribute children per expression and the constant
        // expression indices, so `union` never re-derives them by probing
        // the expression index with freshly allocated keys.
        let id_vars: Vec<VarId> = id_var_bindings.keys().copied().collect();
        let max_attr = exprs
            .iter()
            .filter_map(|e| match e {
                Expr::Nav { path, .. } => path.iter().max().copied(),
                _ => None,
            })
            .max()
            .map(|m| m + 1)
            .unwrap_or(0);
        let const_idxs: Vec<usize> = exprs
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e, Expr::Const(_) | Expr::Zero))
            .map(|(i, _)| i)
            .collect();
        let mut nav_child: Vec<Vec<Option<usize>>> = vec![Vec::new(); exprs.len()];
        let mut var_child: Vec<Vec<(RelationId, Vec<Option<usize>>)>> =
            vec![Vec::new(); exprs.len()];
        for (i, e) in exprs.iter().enumerate() {
            match e {
                Expr::Nav { var, rel, path } => {
                    nav_child[i] = (0..max_attr)
                        .map(|attr| {
                            let mut p = path.clone();
                            p.push(attr);
                            expr_index
                                .get(&Expr::Nav {
                                    var: *var,
                                    rel: *rel,
                                    path: p,
                                })
                                .copied()
                        })
                        .collect();
                }
                Expr::Var(v) => {
                    if let Some(rels) = id_var_bindings.get(v) {
                        let mut per: Vec<(RelationId, Vec<Option<usize>>)> = rels
                            .iter()
                            .map(|&rel| {
                                let children = (0..max_attr)
                                    .map(|attr| {
                                        expr_index
                                            .get(&Expr::Nav {
                                                var: *v,
                                                rel,
                                                path: vec![attr],
                                            })
                                            .copied()
                                    })
                                    .collect();
                                (rel, children)
                            })
                            .collect();
                        per.sort_by_key(|(rel, _)| *rel);
                        var_child[i] = per;
                    }
                }
                _ => {}
            }
        }

        TaskContext {
            task,
            exprs,
            sorts,
            null_idx,
            zero_idx,
            id_var_bindings,
            related,
            expr_index,
            id_vars,
            max_attr,
            const_idxs,
            nav_child,
            var_child,
        }
    }

    /// Number of expressions in the universe.
    pub fn len(&self) -> usize {
        self.exprs.len()
    }

    /// Returns `true` if the universe is empty (never the case in practice —
    /// `null` and `0` are always present).
    pub fn is_empty(&self) -> bool {
        self.exprs.is_empty()
    }

    /// The index of an expression, if it belongs to the universe.
    pub fn index_of(&self, e: &Expr) -> Option<usize> {
        self.expr_index.get(e).copied()
    }

    /// The index of a variable's expression.
    ///
    /// # Panics
    /// Panics if the variable is not part of this task's universe.
    pub fn var_idx(&self, v: VarId) -> usize {
        self.index_of(&Expr::Var(v))
            .expect("variable not in this task's universe")
    }

    /// The index of a term of a condition, if representable.
    pub fn term_idx(&self, term: &Term) -> Option<usize> {
        match term {
            Term::Var(v) => self.index_of(&Expr::Var(*v)),
            Term::Null => Some(self.null_idx),
            Term::Const(c) if c.is_zero() => Some(self.zero_idx),
            Term::Const(c) => self.index_of(&Expr::Const(*c)),
        }
    }

    /// The navigation expressions anchored at a variable, together with the
    /// relation they assume the variable is bound to.
    pub fn navs_of(&self, v: VarId) -> impl Iterator<Item = (usize, RelationId)> + '_ {
        self.exprs.iter().enumerate().filter_map(move |(i, e)| match e {
            Expr::Nav { var, rel, .. } if *var == v => Some((i, *rel)),
            _ => None,
        })
    }

    /// The expression extending `idx` by one attribute step, if present in
    /// the universe (used for congruence closure).
    pub fn child_of(&self, idx: usize, attr: usize) -> Option<usize> {
        match &self.exprs[idx] {
            Expr::Var(v) => {
                // A variable's children exist for each candidate binding; the
                // caller supplies the binding-specific relation via `navs_of`,
                // so here we only handle the unique-binding case.
                let rels = self.id_var_bindings.get(v)?;
                if rels.len() == 1 {
                    self.index_of(&Expr::Nav {
                        var: *v,
                        rel: rels[0],
                        path: vec![attr],
                    })
                } else {
                    None
                }
            }
            Expr::Nav { var, rel, path } => {
                let mut p = path.clone();
                p.push(attr);
                self.index_of(&Expr::Nav {
                    var: *var,
                    rel: *rel,
                    path: p,
                })
            }
            _ => None,
        }
    }

    /// The task's ID variables in ascending order: the fixed key sequence
    /// that every state's flat binding vector is parallel to.
    pub fn id_vars(&self) -> &[VarId] {
        &self.id_vars
    }

    /// The position of an ID variable in [`TaskContext::id_vars`] (and hence
    /// in every state's binding vector), if it is one.
    pub fn id_var_pos(&self, v: VarId) -> Option<usize> {
        self.id_vars.binary_search(&v).ok()
    }

    /// One past the largest attribute index appearing in any navigation of
    /// the universe.
    pub fn max_attr(&self) -> usize {
        self.max_attr
    }

    /// Indices of the constant expressions (`0` and named constants), in
    /// ascending order.
    pub fn const_exprs(&self) -> &[usize] {
        &self.const_idxs
    }

    /// The child of a navigation expression along `attr`, from the
    /// precomputed table (`None` for non-navigation expressions or absent
    /// children).
    pub fn child_of_nav(&self, idx: usize, attr: usize) -> Option<usize> {
        self.nav_child[idx].get(attr).copied().flatten()
    }

    /// The child of an ID-variable expression along `attr` under binding
    /// `rel`, from the precomputed table.
    pub fn child_of_var(&self, idx: usize, rel: RelationId, attr: usize) -> Option<usize> {
        let per = &self.var_child[idx];
        let entry = per.binary_search_by_key(&rel, |(r, _)| *r).ok()?;
        per[entry].1.get(attr).copied().flatten()
    }

    /// The candidate relations an ID variable can be bound to.
    pub fn bindings_for(&self, v: VarId) -> &[RelationId] {
        self.id_var_bindings
            .get(&v)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Expressions related to the given one through the atom basis.
    pub fn related_to(&self, idx: usize) -> &BTreeSet<usize> {
        &self.related[idx]
    }

    /// Renders an expression for diagnostics.
    pub fn display_expr(&self, schema: &ArtifactSchema, idx: usize) -> String {
        self.exprs[idx].display(schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use has_model::{SetUpdate, SystemBuilder};

    fn travel_like() -> (ArtifactSystem, TaskId) {
        let mut b = SystemBuilder::new("t");
        b.relation("HOTELS", &["unit_price"], &[]);
        b.relation("FLIGHTS", &["price"], &[("comp_hotel", "HOTELS")]);
        let root = b.root_task("Root");
        let flight = b.id_var(root, "flight_id");
        let hotel = b.id_var(root, "hotel_id");
        let price = b.num_var(root, "price");
        let status = b.num_var(root, "status");
        let flights = b.relation_id("FLIGHTS").unwrap();
        // post: FLIGHTS(flight, price, hotel) ∧ status = 1
        let post = Condition::relation(
            flights,
            vec![Term::Var(flight), Term::Var(price), Term::Var(hotel)],
        )
        .and(Condition::eq_const(status, Rational::from_int(1)));
        b.internal_service(root, "choose", Condition::True, post, SetUpdate::None);
        let sys = b.build().unwrap();
        let root = sys.root();
        (sys, root)
    }

    #[test]
    fn universe_contains_expected_expressions() {
        let (sys, root) = travel_like();
        let ctx = TaskContext::build(&sys, root, &[], 1);
        let schema = &sys.schema;
        let flight = schema.var_by_name(root, "flight_id").unwrap();
        let flights = schema.database.relation_by_name("FLIGHTS").unwrap();
        // Universe has null, 0, constant 1, 4 variables, 2 navigations from
        // flight (price, comp_hotel).
        assert!(ctx.index_of(&Expr::Null).is_some());
        assert!(ctx.index_of(&Expr::Const(Rational::from_int(1))).is_some());
        assert!(ctx
            .index_of(&Expr::Nav {
                var: flight,
                rel: flights,
                path: vec![1]
            })
            .is_some());
        assert!(ctx
            .index_of(&Expr::Nav {
                var: flight,
                rel: flights,
                path: vec![2]
            })
            .is_some());
        assert_eq!(ctx.bindings_for(flight), &[flights]);
        // hotel_id appears in a foreign-key position referencing HOTELS, so
        // it picks up HOTELS as a candidate binding (and one navigation).
        let hotel = schema.var_by_name(root, "hotel_id").unwrap();
        let hotels = schema.database.relation_by_name("HOTELS").unwrap();
        assert_eq!(ctx.bindings_for(hotel), &[hotels]);
        assert_eq!(ctx.len(), 10);
        assert!(!ctx.is_empty());
    }

    #[test]
    fn deeper_navigation_depth_adds_fk_chains() {
        let (sys, root) = travel_like();
        let shallow = TaskContext::build(&sys, root, &[], 1);
        let deep = TaskContext::build(&sys, root, &[], 2);
        assert!(deep.len() > shallow.len());
        let schema = &sys.schema;
        let flight = schema.var_by_name(root, "flight_id").unwrap();
        let flights = schema.database.relation_by_name("FLIGHTS").unwrap();
        // flight@FLIGHTS.comp_hotel.unit_price exists at depth 2.
        assert!(deep
            .index_of(&Expr::Nav {
                var: flight,
                rel: flights,
                path: vec![2, 1]
            })
            .is_some());
    }

    #[test]
    fn atom_basis_relates_condition_expressions() {
        let (sys, root) = travel_like();
        let ctx = TaskContext::build(&sys, root, &[], 1);
        let schema = &sys.schema;
        let price = schema.var_by_name(root, "price").unwrap();
        let flight = schema.var_by_name(root, "flight_id").unwrap();
        let flights = schema.database.relation_by_name("FLIGHTS").unwrap();
        let price_idx = ctx.var_idx(price);
        let nav_price = ctx
            .index_of(&Expr::Nav {
                var: flight,
                rel: flights,
                path: vec![1],
            })
            .unwrap();
        assert!(ctx.related_to(price_idx).contains(&nav_price));
        // The status variable is related to the constant 1.
        let status = schema.var_by_name(root, "status").unwrap();
        let one = ctx.index_of(&Expr::Const(Rational::from_int(1))).unwrap();
        assert!(ctx.related_to(ctx.var_idx(status)).contains(&one));
    }

    #[test]
    fn property_conditions_extend_the_universe() {
        let (sys, root) = travel_like();
        let schema = &sys.schema;
        let status = schema.var_by_name(root, "status").unwrap();
        let extra = Condition::eq_const(status, Rational::from_int(42));
        let ctx = TaskContext::build(&sys, root, &[extra], 1);
        assert!(ctx.index_of(&Expr::Const(Rational::from_int(42))).is_some());
    }
}
