//! Navigation expressions and their sorts.

use has_arith::Rational;
use has_model::{ArtifactSchema, AttrKind, RelationId, VarId, VarSort};
use std::fmt;

/// The sort of an expression (Section 4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sort {
    /// Numeric sort (numeric variables, the constant `0`, navigations ending
    /// in a numeric attribute).
    Numeric,
    /// Identifier of a tuple of the given relation.
    Id(RelationId),
    /// The null sort (the constant `null`; ID variables not bound to any
    /// relation have this sort too and are forced equal to `null`).
    Null,
}

/// An expression of the symbolic representation.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Expr {
    /// The constant `null`.
    Null,
    /// The numeric constant `0`.
    Zero,
    /// A non-zero numeric constant appearing in the specification or the
    /// property (e.g. the status codes of the travel-booking example).
    Const(Rational),
    /// An artifact variable.
    Var(VarId),
    /// A navigation `x_R.a₁.…` : the variable `x` read as an identifier of
    /// relation `rel`, followed by a non-empty path of attribute indices
    /// (all but possibly the last being foreign keys).
    Nav {
        /// The anchoring ID variable.
        var: VarId,
        /// The relation whose identifier the variable holds.
        rel: RelationId,
        /// Attribute indices along the navigation.
        path: Vec<usize>,
    },
}

impl Expr {
    /// The sort of the expression under the given schema.
    pub fn sort(&self, schema: &ArtifactSchema) -> Sort {
        match self {
            Expr::Null => Sort::Null,
            Expr::Zero | Expr::Const(_) => Sort::Numeric,
            Expr::Var(v) => match schema.variable(*v).sort {
                VarSort::Numeric => Sort::Numeric,
                // The sort of an ID variable depends on the state (bound or
                // null); as a static sort we report Null, and the state
                // refines it. Equality compatibility between ID variables is
                // checked dynamically.
                VarSort::Id => Sort::Null,
            },
            Expr::Nav { rel, path, .. } => {
                let mut current = *rel;
                let mut last_kind = None;
                for &idx in path {
                    let attr = &schema.database.relation(current).attributes[idx];
                    last_kind = Some(attr.kind);
                    if let AttrKind::ForeignKey(next) = attr.kind {
                        current = next;
                    }
                }
                match last_kind {
                    Some(AttrKind::Numeric) => Sort::Numeric,
                    Some(AttrKind::ForeignKey(target)) => Sort::Id(target),
                    Some(AttrKind::Key) | None => Sort::Id(current),
                }
            }
        }
    }

    /// The anchoring variable, if the expression is a variable or navigation.
    pub fn base_var(&self) -> Option<VarId> {
        match self {
            Expr::Var(v) | Expr::Nav { var: v, .. } => Some(*v),
            _ => None,
        }
    }

    /// Returns `true` if this is a navigation expression.
    pub fn is_nav(&self) -> bool {
        matches!(self, Expr::Nav { .. })
    }

    /// Human-readable rendering using schema names.
    pub fn display(&self, schema: &ArtifactSchema) -> String {
        match self {
            Expr::Null => "null".to_string(),
            Expr::Zero => "0".to_string(),
            Expr::Const(c) => c.to_string(),
            Expr::Var(v) => schema.variable(*v).name.clone(),
            Expr::Nav { var, rel, path } => {
                let mut s = format!(
                    "{}@{}",
                    schema.variable(*var).name,
                    schema.database.relation(*rel).name
                );
                let mut current = *rel;
                for &idx in path {
                    let attr = &schema.database.relation(current).attributes[idx];
                    s.push('.');
                    s.push_str(&attr.name);
                    if let AttrKind::ForeignKey(next) = attr.kind {
                        current = next;
                    }
                }
                s
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Null => write!(f, "null"),
            Expr::Zero => write!(f, "0"),
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Nav { var, rel, path } => write!(f, "{var}@R{}.{:?}", rel.0, path),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use has_model::SystemBuilder;

    fn schema() -> (ArtifactSchema, VarId, VarId) {
        let mut b = SystemBuilder::new("t");
        b.relation("HOTELS", &["price"], &[]);
        b.relation("FLIGHTS", &["price"], &[("hotel", "HOTELS")]);
        let root = b.root_task("Root");
        let x = b.id_var(root, "x");
        let n = b.num_var(root, "n");
        (b.build().unwrap().schema, x, n)
    }

    #[test]
    fn sorts_of_basic_expressions() {
        let (schema, x, n) = schema();
        assert_eq!(Expr::Null.sort(&schema), Sort::Null);
        assert_eq!(Expr::Zero.sort(&schema), Sort::Numeric);
        assert_eq!(Expr::Var(n).sort(&schema), Sort::Numeric);
        assert_eq!(Expr::Var(x).sort(&schema), Sort::Null);
    }

    #[test]
    fn sorts_of_navigations() {
        let (schema, x, _) = schema();
        let flights = schema.database.relation_by_name("FLIGHTS").unwrap();
        let hotels = schema.database.relation_by_name("HOTELS").unwrap();
        // FLIGHTS attributes: 0=id, 1=price, 2=hotel(FK)
        let price = Expr::Nav {
            var: x,
            rel: flights,
            path: vec![1],
        };
        let hotel = Expr::Nav {
            var: x,
            rel: flights,
            path: vec![2],
        };
        let hotel_price = Expr::Nav {
            var: x,
            rel: flights,
            path: vec![2, 1],
        };
        assert_eq!(price.sort(&schema), Sort::Numeric);
        assert_eq!(hotel.sort(&schema), Sort::Id(hotels));
        assert_eq!(hotel_price.sort(&schema), Sort::Numeric);
        assert_eq!(hotel_price.base_var(), Some(x));
        assert!(hotel_price.is_nav());
        assert_eq!(hotel_price.display(&schema), "x@FLIGHTS.hotel.price");
    }
}
