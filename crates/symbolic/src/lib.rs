//! Symbolic representation of local runs (Section 4.1 of the paper).
//!
//! The verifier never enumerates concrete databases or valuations. Instead,
//! each reachable situation of a task is summarized by a **symbolic state**:
//! an equality type over a finite universe of *expressions* — the task's
//! artifact variables, the constants `null` and `0`, and foreign-key
//! navigation expressions `x_R.w` anchored at the task's ID variables —
//! together with, for every ID variable, the relation its value is an
//! identifier of (or `null`). This is the paper's *T-isomorphism type*,
//! restricted to the navigation expressions that the task's conditions and
//! the property can actually observe (see DESIGN.md §5.3–5.4 for why this
//! restriction preserves the verification outcomes at the granularity of the
//! specification's atoms while keeping the state space tractable — the same
//! engineering choice made by the authors' later VERIFAS prototype).
//!
//! The crate provides:
//!
//! * [`Expr`] — navigation expressions and their sorts;
//! * [`TaskContext`] — the per-task expression universe and atom basis,
//!   derived from the specification and the property;
//! * [`SymState`] — the equality type itself, with congruence closure (key
//!   dependencies), condition evaluation, canonical projection keys
//!   (used for the TS-isomorphism-type counters and for the input/output
//!   types exchanged between tasks), and the extension enumeration used by
//!   the verifier to compute successors.
//!
//! # Worked example
//!
//! Build a one-task system with a numeric variable, derive the task's
//! symbolic context from the condition `y = 0`, and watch the equality type
//! decide that condition before and after the variable is rewritten:
//!
//! ```
//! use has_arith::{LinearConstraint, Rational};
//! use has_model::{Condition, SystemBuilder, VarId};
//! use has_symbolic::{SymState, TaskContext};
//!
//! let mut b = SystemBuilder::new("demo");
//! let root = b.root_task("Main");
//! let y = b.num_var(root, "y");
//! let system = b.build().unwrap();
//!
//! // The expression universe contains exactly what the given conditions
//! // can observe — here the variable `y` and the constant `0`.
//! let zero = Condition::eq_const(y, Rational::ZERO);
//! let ctx = TaskContext::build(&system, root, &[zero.clone()], 1);
//! let no_arith = |_: &LinearConstraint<VarId>| None;
//!
//! // Initially every numeric variable sits in the `0` equivalence class …
//! let mut state = SymState::blank(&ctx, &system.schema);
//! assert_eq!(state.satisfies(&ctx, &zero, &no_arith), Some(true));
//!
//! // … and rewriting `y` to a fresh value separates it from `0`: the
//! // equality type now *determines* the condition to be false.
//! state.fresh_numeric(&ctx, y);
//! assert_eq!(state.satisfies(&ctx, &zero, &no_arith), Some(false));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod context;
pub mod expr;
pub mod state;

pub use context::TaskContext;
pub use expr::{Expr, Sort};
pub use state::{transfer_pattern, ProjectionKey, SymState};
